/**
 * @file
 * The runner's resilience layer: job-level fault containment (a
 * throwing/panicking spec is isolated from its siblings), watchdog
 * timeouts, bounded retry with deterministic results, and
 * checkpoint/resume through the sweep journal with byte-identical
 * merged outputs at any worker count.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/sim_context.hh"
#include "common/stat_export.hh"
#include "sim/runner/experiment_runner.hh"
#include "sim/runner/sweep_journal.hh"

namespace texpim {
namespace {

ExperimentSpec
smallSpec(Design d, Game g = Game::Doom3)
{
    ExperimentSpec spec;
    spec.config.design = d;
    spec.workload = Workload{g, 64, 48};
    spec.frame = 3;
    return spec;
}

std::vector<std::string>
labelsOf(const std::vector<ExperimentSpec> &specs)
{
    std::vector<std::string> out;
    out.reserve(specs.size());
    for (const ExperimentSpec &s : specs)
        out.push_back(s.name.empty() ? s.defaultLabel() : s.name);
    return out;
}

void
expectSameOutcome(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.error.category, b.error.category);
    EXPECT_EQ(a.result.frame.frameCycles, b.result.frame.frameCycles);
    EXPECT_EQ(a.result.textureFilterCycles, b.result.textureFilterCycles);
    EXPECT_EQ(a.result.textureTrafficBytes, b.result.textureTrafficBytes);
    EXPECT_EQ(a.result.offChipTotalBytes, b.result.offChipTotalBytes);
    EXPECT_EQ(a.result.angleRecalcs, b.result.angleRecalcs);
    EXPECT_EQ(a.result.energy.total(), b.result.energy.total());
    EXPECT_EQ(a.imageFnv1a, b.imageFnv1a);
    EXPECT_EQ(a.totalFaults, b.totalFaults);
    EXPECT_EQ(a.stats, b.stats);
}

// --- containment ----------------------------------------------------

TEST(RunnerResilience, ThrowingSpecIsIsolatedFromSiblings)
{
    std::vector<ExperimentSpec> specs = {
        smallSpec(Design::Baseline), smallSpec(Design::BPim),
        smallSpec(Design::STfim)};
    specs[1].inject = InjectedFailure::Throw;

    for (unsigned jobs : {1u, 2u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        RunnerOptions opt;
        opt.jobs = jobs;
        std::vector<ExperimentResult> results =
            ExperimentRunner(opt).run(specs);
        ASSERT_EQ(results.size(), 3u);

        EXPECT_TRUE(results[0].ok());
        EXPECT_NE(results[0].imageFnv1a, 0u);

        EXPECT_EQ(results[1].status, JobStatus::Failed);
        EXPECT_EQ(results[1].error.category, JobErrorCategory::Exception);
        EXPECT_EQ(results[1].error.specIndex, 1u);
        EXPECT_NE(results[1].error.message.find("injected failure: throw"),
                  std::string::npos);
        EXPECT_EQ(results[1].imageFnv1a, 0u);
        EXPECT_TRUE(results[1].stats.empty())
            << "failed spec leaked stats into its result";

        EXPECT_TRUE(results[2].ok());
        EXPECT_NE(results[2].imageFnv1a, 0u);
    }
}

TEST(RunnerResilience, ContainedPanicRecordsSiteAndSparesTheProcess)
{
    StatRegistry &def = SimContext::processDefault().stats();
    size_t default_groups = def.size();

    std::vector<ExperimentSpec> specs = {smallSpec(Design::Baseline)};
    specs[0].inject = InjectedFailure::Panic;
    std::vector<ExperimentResult> results =
        ExperimentRunner(RunnerOptions{}).run(specs);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_EQ(results[0].error.category, JobErrorCategory::Panic);
    EXPECT_NE(results[0].error.site.find("experiment_runner.cc:"),
              std::string::npos)
        << results[0].error.site;
    EXPECT_NE(results[0].error.message.find("injected failure: panic"),
              std::string::npos);

    // The containment (handler + per-job SimContext) left the
    // process-default registry exactly as it was.
    EXPECT_EQ(def.size(), default_groups);
    EXPECT_FALSE(ScopedPanicHandler::installed());
}

TEST(RunnerResilience, FailedSpecsContributeNothingToMergedStats)
{
    std::vector<ExperimentSpec> specs = {smallSpec(Design::Baseline),
                                         smallSpec(Design::BPim)};
    specs[1].inject = InjectedFailure::Throw;
    std::vector<ExperimentResult> results =
        ExperimentRunner(RunnerOptions{}).run(specs);
    StatRegistry::Snapshot merged = mergedStats(results);
    EXPECT_EQ(merged, results[0].stats)
        << "merged stats must be exactly the surviving spec's snapshot";
}

// --- watchdog -------------------------------------------------------

TEST(RunnerResilience, WatchdogCancelsARealRenderAtAPollSite)
{
    std::vector<ExperimentSpec> specs = {smallSpec(Design::Baseline)};
    RunnerOptions opt;
    opt.jobTimeoutMs = 1; // a 64x48 frame takes far longer than 1 ms
    std::vector<ExperimentResult> results =
        ExperimentRunner(opt).run(specs);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Timeout);
    EXPECT_EQ(results[0].error.category, JobErrorCategory::Timeout);
    EXPECT_TRUE(results[0].error.site == "renderer.frame" ||
                results[0].error.site == "renderer.tile")
        << "timeout observed at '" << results[0].error.site
        << "', not a render-loop poll site";
    EXPECT_EQ(results[0].attempts, 1u) << "timeouts are not retryable";
}

TEST(RunnerResilience, HangInjectionTimesOutCooperatively)
{
    std::vector<ExperimentSpec> specs = {smallSpec(Design::Baseline)};
    specs[0].inject = InjectedFailure::Hang;
    RunnerOptions opt;
    opt.jobTimeoutMs = 50;
    std::vector<ExperimentResult> results =
        ExperimentRunner(opt).run(specs);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Timeout);
    EXPECT_EQ(results[0].error.site, "runner.inject_hang");
}

TEST(RunnerResilience, HangWithoutWatchdogPanicsInsteadOfWedging)
{
    std::vector<ExperimentSpec> specs = {smallSpec(Design::Baseline)};
    specs[0].inject = InjectedFailure::Hang;
    std::vector<ExperimentResult> results =
        ExperimentRunner(RunnerOptions{}).run(specs); // no jobTimeoutMs
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_EQ(results[0].error.category, JobErrorCategory::Panic);
}

// --- retry ----------------------------------------------------------

TEST(RunnerResilience, RetryThenSucceedIsBitIdenticalToACleanRun)
{
    std::vector<ExperimentSpec> flaky = {smallSpec(Design::ATfim)};
    flaky[0].inject = InjectedFailure::Panic;
    flaky[0].injectUntilAttempt = 1; // fail attempt 0, succeed attempt 1

    RunnerOptions opt;
    opt.maxRetries = 2;
    opt.retryBackoffMs = 0; // keep the test fast
    std::vector<ExperimentResult> retried =
        ExperimentRunner(opt).run(flaky);
    ASSERT_EQ(retried.size(), 1u);
    EXPECT_TRUE(retried[0].ok());
    EXPECT_EQ(retried[0].attempts, 2u);

    std::vector<ExperimentResult> clean =
        ExperimentRunner(RunnerOptions{}).run({smallSpec(Design::ATfim)});
    ASSERT_TRUE(clean[0].ok());
    EXPECT_EQ(retried[0].imageFnv1a, clean[0].imageFnv1a);
    EXPECT_EQ(retried[0].result.frame.frameCycles,
              clean[0].result.frame.frameCycles);
    EXPECT_EQ(retried[0].stats, clean[0].stats)
        << "a spec that succeeded on retry must match a first-try run";
}

TEST(RunnerResilience, ExceptionsAreNotRetriedByDefault)
{
    std::vector<ExperimentSpec> specs = {smallSpec(Design::Baseline)};
    specs[0].inject = InjectedFailure::Throw;
    specs[0].injectUntilAttempt = 1; // would succeed on retry...
    RunnerOptions opt;
    opt.maxRetries = 3;
    std::vector<ExperimentResult> results =
        ExperimentRunner(opt).run(specs);
    // ...but exceptions are deterministic failures: one attempt only.
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_EQ(results[0].attempts, 1u);
}

TEST(RunnerResilience, RetriesAreBoundedByMaxRetries)
{
    std::vector<ExperimentSpec> specs = {smallSpec(Design::Baseline)};
    specs[0].inject = InjectedFailure::Panic; // fails every attempt
    RunnerOptions opt;
    opt.maxRetries = 2;
    opt.retryBackoffMs = 0;
    std::vector<ExperimentResult> results =
        ExperimentRunner(opt).run(specs);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_EQ(results[0].attempts, 3u) << "1 try + maxRetries retries";
}

// --- journal / resume -----------------------------------------------

TEST(SweepJournal, RoundTripRestoresResultsBitExactly)
{
    std::vector<ExperimentSpec> specs = {smallSpec(Design::Baseline),
                                         smallSpec(Design::BPim)};
    specs[1].inject = InjectedFailure::Throw; // failed rows journal too
    std::string path = testing::TempDir() + "texpim_journal_rt.jsonl";

    RunnerOptions opt;
    SweepJournal journal(path, specs.size(), /*fresh=*/true);
    opt.journal = &journal;
    std::vector<ExperimentResult> results =
        ExperimentRunner(opt).run(specs);

    std::map<size_t, ExperimentResult> restored =
        SweepJournal::load(path, labelsOf(specs));
    ASSERT_EQ(restored.size(), 2u);
    for (size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE(results[i].name);
        ASSERT_TRUE(restored.count(i));
        expectSameOutcome(results[i], restored.at(i));
        EXPECT_EQ(restored.at(i).error.message, results[i].error.message);
        EXPECT_EQ(restored.at(i).error.site, results[i].error.site);
    }
    std::remove(path.c_str());
}

TEST(SweepJournal, ResumeReproducesAnUninterruptedRunAtAnyJobs)
{
    std::vector<ExperimentSpec> specs = {
        smallSpec(Design::Baseline), smallSpec(Design::BPim),
        smallSpec(Design::STfim), smallSpec(Design::ATfim)};
    std::string path = testing::TempDir() + "texpim_journal_resume.jsonl";

    // The uninterrupted reference run, journaled.
    RunnerOptions full_opt;
    SweepJournal journal(path, specs.size(), /*fresh=*/true);
    full_opt.journal = &journal;
    std::vector<ExperimentResult> full =
        ExperimentRunner(full_opt).run(specs);
    std::string full_merged = snapshotToJson(mergedStats(full), 4);

    // Simulate a kill after two completed specs: truncate the journal
    // to its header plus the first two rows.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        for (std::string l; std::getline(in, l);)
            lines.push_back(l);
    }
    ASSERT_EQ(lines.size(), 1 + specs.size());
    std::string partial = testing::TempDir() + "texpim_journal_part.jsonl";
    {
        std::ofstream out(partial);
        for (size_t i = 0; i < 3; ++i)
            out << lines[i] << "\n";
    }

    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        std::map<size_t, ExperimentResult> restored =
            SweepJournal::load(partial, labelsOf(specs));
        ASSERT_EQ(restored.size(), 2u);
        RunnerOptions opt;
        opt.jobs = jobs;
        opt.resumed = &restored;
        std::vector<ExperimentResult> resumed =
            ExperimentRunner(opt).run(specs);
        ASSERT_EQ(resumed.size(), full.size());
        for (size_t i = 0; i < full.size(); ++i) {
            SCOPED_TRACE(full[i].name);
            expectSameOutcome(full[i], resumed[i]);
        }
        EXPECT_EQ(snapshotToJson(mergedStats(resumed), 4), full_merged)
            << "merged stats diverged across the resume boundary";
    }
    std::remove(path.c_str());
    std::remove(partial.c_str());
}

TEST(SweepJournal, TornFinalLineIsDroppedWithAWarning)
{
    std::vector<ExperimentSpec> specs = {smallSpec(Design::Baseline),
                                         smallSpec(Design::BPim)};
    specs[0].inject = InjectedFailure::Throw; // cheap rows, no render
    specs[1].inject = InjectedFailure::Throw;
    std::string path = testing::TempDir() + "texpim_journal_torn.jsonl";

    RunnerOptions opt;
    SweepJournal journal(path, specs.size(), /*fresh=*/true);
    opt.journal = &journal;
    ExperimentRunner(opt).run(specs);
    {
        // A kill mid-append tears the final line.
        std::ifstream in(path);
        std::vector<std::string> lines;
        for (std::string l; std::getline(in, l);)
            lines.push_back(l);
        in.close();
        std::ofstream out(path);
        out << lines[0] << "\n" << lines[1] << "\n";
        out << lines[2].substr(0, lines[2].size() / 2); // torn
    }

    setLogQuiet(true);
    unsigned long warns = warnCount();
    std::map<size_t, ExperimentResult> restored =
        SweepJournal::load(path, labelsOf(specs));
    setLogQuiet(false);
    EXPECT_EQ(restored.size(), 1u) << "torn row must not be restored";
    EXPECT_TRUE(restored.count(0));
    EXPECT_GT(warnCount(), warns) << "torn line should warn";
    std::remove(path.c_str());
}

TEST(SweepJournalDeath, ResumingADifferentGridIsFatal)
{
    std::vector<ExperimentSpec> specs = {smallSpec(Design::Baseline),
                                         smallSpec(Design::BPim)};
    specs[0].inject = InjectedFailure::Throw;
    specs[1].inject = InjectedFailure::Throw;
    std::string path = testing::TempDir() + "texpim_journal_grid.jsonl";
    RunnerOptions opt;
    SweepJournal journal(path, specs.size(), /*fresh=*/true);
    opt.journal = &journal;
    ExperimentRunner(opt).run(specs);

    // Wrong spec count.
    EXPECT_EXIT(SweepJournal::load(path, {"only-one"}),
                testing::ExitedWithCode(1), "resume must use the same grid");
    // Right count, wrong names.
    EXPECT_EXIT(SweepJournal::load(path, {"wrong/a", "wrong/b"}),
                testing::ExitedWithCode(1), "resume must use the same grid");
    std::remove(path.c_str());
}

} // namespace
} // namespace texpim
