/**
 * @file
 * Cross-design property sweep: for every game x design combination (at
 * a reduced resolution so the whole sweep stays fast), the invariants
 * that define each design must hold.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "quality/image_metrics.hh"
#include "sim/simulator.hh"

namespace texpim {
namespace {

using Param = std::tuple<Game, Design>;

class DesignSweep : public testing::TestWithParam<Param>
{
  protected:
    static Scene
    scene(Game g)
    {
        Workload wl{g, 160, 120};
        Scene s = buildGameScene(wl, 2);
        s.settings.maxAniso = 8;
        return s;
    }
};

TEST_P(DesignSweep, InvariantsHold)
{
    auto [game, design] = GetParam();
    Scene s = scene(game);

    SimConfig base_cfg;
    base_cfg.design = Design::Baseline;
    RenderingSimulator base_sim(base_cfg);
    SimResult base = base_sim.renderScene(s);

    SimConfig cfg;
    cfg.design = design;
    RenderingSimulator sim(cfg);
    SimResult r = sim.renderScene(s);

    // Universal sanity.
    EXPECT_GT(r.frame.frameCycles, 0u);
    EXPECT_GT(r.offChipTotalBytes, 0u);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_EQ(r.frame.fragmentsShaded, base.frame.fragmentsShaded);

    switch (design) {
      case Design::Baseline:
        EXPECT_EQ(r.frame.frameCycles, base.frame.frameCycles);
        break;
      case Design::BPim:
      case Design::STfim:
        // Exact designs: bit-identical frames.
        EXPECT_EQ(differingPixels(*base.image, *r.image), 0u);
        break;
      case Design::ATfim:
        // Approximate but high quality at the default threshold. (No
        // traffic assertion at this tiny resolution: the paper's own
        // Fig. 12 shows A-TFIM traffic exceeding the baseline at low
        // resolutions, where package overheads dominate.)
        EXPECT_GT(psnr(*base.image, *r.image), 40.0);
        // All parent data arrives via packages, never as plain
        // texture-class reads.
        EXPECT_EQ(r.offChipBytesByClass[unsigned(TrafficClass::Texture)],
                  0u);
        EXPECT_GT(r.offChipBytesByClass[unsigned(TrafficClass::PimPackage)],
                  0u);
        break;
      default:
        FAIL();
    }

    if (design == Design::STfim) {
        // All texel movement is internal; off-chip texture class empty.
        EXPECT_EQ(r.offChipBytesByClass[unsigned(TrafficClass::Texture)],
                  0u);
        EXPECT_GT(r.offChipBytesByClass[unsigned(TrafficClass::PimPackage)],
                  0u);
    }
}

std::string
paramName(const testing::TestParamInfo<Param> &info)
{
    return std::string(gameName(std::get<0>(info.param))) + "_" +
           (std::get<1>(info.param) == Design::Baseline  ? "baseline"
            : std::get<1>(info.param) == Design::BPim    ? "bpim"
            : std::get<1>(info.param) == Design::STfim   ? "stfim"
                                                         : "atfim");
}

INSTANTIATE_TEST_SUITE_P(
    AllGamesAllDesigns, DesignSweep,
    testing::Combine(testing::Values(Game::Doom3, Game::Fear,
                                     Game::HalfLife2, Game::Riddick,
                                     Game::Wolfenstein),
                     testing::Values(Design::Baseline, Design::BPim,
                                     Design::STfim, Design::ATfim)),
    paramName);

} // namespace
} // namespace texpim
