/**
 * @file
 * End-to-end fault injection and graceful PIM→host degradation: faulty
 * renders must complete, be seed-deterministic, and never change the
 * image relative to a fault-free run of the same design.
 */

#include <gtest/gtest.h>

#include "quality/image_metrics.hh"
#include "sim/simulator.hh"

namespace texpim {
namespace {

Scene
testScene()
{
    Workload wl{Game::Riddick, 256, 192};
    Scene s = buildGameScene(wl, 3);
    s.settings.maxAniso = 8;
    return s;
}

struct FaultKnobs
{
    double linkBer = 0.0;
    double vaultBer = 0.0;
    u64 seed = 0x5eed;
    Cycle packageTimeout = 0;
    double retryRateThreshold = 0.0;
    /** Pin the functional schedule (gpu.deterministic_schedule): must
     *  be set on BOTH sides of an image A/B across timing-perturbing
     *  knobs, because the default horizon schedule feeds timing back
     *  into the request order A-TFIM's shared caches see. */
    bool pinned = false;
};

SimResult
run(Design d, const FaultKnobs &k = {})
{
    SimConfig cfg;
    cfg.design = d;
    cfg.hmc.fault.linkBer = k.linkBer;
    cfg.hmc.fault.vaultBer = k.vaultBer;
    cfg.hmc.fault.seed = k.seed;
    cfg.robustness.packageTimeout = k.packageTimeout;
    cfg.robustness.retryRateThreshold = k.retryRateThreshold;
    cfg.robustness.minPackets = 64;
    cfg.gpu.deterministicSchedule = k.pinned;
    RenderingSimulator sim(cfg);
    return sim.renderScene(testScene());
}

TEST(Degradation, DefaultsAreBitIdenticalToFaultFree)
{
    // All fault_* knobs at their defaults must not change a cycle.
    for (Design d : {Design::BPim, Design::STfim, Design::ATfim}) {
        SCOPED_TRACE(designName(d));
        SimResult plain = run(d);
        SimResult knobs_off = run(d, FaultKnobs{0.0, 0.0, 0x1234, 0, 0.0});
        EXPECT_EQ(plain.frame.frameCycles, knobs_off.frame.frameCycles);
        EXPECT_EQ(plain.textureFilterCycles, knobs_off.textureFilterCycles);
        EXPECT_EQ(imageHash(*plain.image), imageHash(*knobs_off.image));
        EXPECT_EQ(knobs_off.crcErrors, 0u);
        EXPECT_EQ(knobs_off.linkRetries, 0u);
        EXPECT_EQ(knobs_off.pimFallbacks, 0u);
    }
}

TEST(Degradation, FaultyRendersCompleteOnAllHmcDesigns)
{
    FaultKnobs k;
    k.linkBer = 1e-3;
    k.vaultBer = 1e-4;
    for (Design d : {Design::BPim, Design::STfim, Design::ATfim}) {
        SCOPED_TRACE(designName(d));
        SimResult r = run(d, k);
        EXPECT_GT(r.frame.frameCycles, 1000u);
        EXPECT_GT(r.crcErrors, 0u);
        EXPECT_GT(r.linkRetries, 0u);
        ASSERT_TRUE(r.image);
    }
}

TEST(Degradation, FaultsNeverChangeTheImage)
{
    // Faults and degradation only move *where* work happens and how
    // long it takes; the filtering math is untouched, so each design's
    // image matches its own fault-free run bit for bit.
    FaultKnobs clean_k;
    clean_k.pinned = true;
    FaultKnobs k;
    k.linkBer = 5e-3;
    k.packageTimeout = 2000;
    k.retryRateThreshold = 0.002;
    k.pinned = true;
    for (Design d : {Design::BPim, Design::STfim, Design::ATfim}) {
        SCOPED_TRACE(designName(d));
        SimResult clean = run(d, clean_k);
        SimResult faulty = run(d, k);
        EXPECT_EQ(differingPixels(*clean.image, *faulty.image), 0u);
        EXPECT_EQ(imageHash(*clean.image), imageHash(*faulty.image));
    }
}

TEST(Degradation, SameSeedSameRun)
{
    FaultKnobs k;
    k.linkBer = 1e-3;
    k.packageTimeout = 3000;
    for (Design d : {Design::STfim, Design::ATfim}) {
        SCOPED_TRACE(designName(d));
        SimResult a = run(d, k);
        SimResult b = run(d, k);
        EXPECT_EQ(a.frame.frameCycles, b.frame.frameCycles);
        EXPECT_EQ(a.textureFilterCycles, b.textureFilterCycles);
        EXPECT_EQ(a.crcErrors, b.crcErrors);
        EXPECT_EQ(a.linkRetries, b.linkRetries);
        EXPECT_EQ(a.pimFallbacks, b.pimFallbacks);
        EXPECT_EQ(imageHash(*a.image), imageHash(*b.image));
    }
}

TEST(Degradation, DifferentSeedsChangeTheStatsNotTheImage)
{
    FaultKnobs k1, k2;
    k1.linkBer = k2.linkBer = 5e-3;
    k1.seed = 1;
    k2.seed = 2;
    k1.pinned = k2.pinned = true;
    SimResult a = run(Design::STfim, k1);
    SimResult b = run(Design::STfim, k2);
    // Different fault patterns: timing/statistics diverge...
    EXPECT_TRUE(a.frame.frameCycles != b.frame.frameCycles ||
                a.crcErrors != b.crcErrors ||
                a.linkRetries != b.linkRetries);
    // ...but the image never does.
    EXPECT_EQ(imageHash(*a.image), imageHash(*b.image));
}

TEST(Degradation, TightTimeoutForcesFallbacks)
{
    // A package timeout far below the offload round trip degrades
    // requests to host-side filtering — without hanging and without
    // touching the image.
    FaultKnobs clean_k;
    clean_k.pinned = true;
    FaultKnobs k;
    k.packageTimeout = 1;
    k.pinned = true;
    for (Design d : {Design::STfim, Design::ATfim}) {
        SCOPED_TRACE(designName(d));
        SimResult clean = run(d, clean_k);
        SimResult degraded = run(d, k);
        EXPECT_GT(degraded.pimFallbacks, 0u);
        EXPECT_EQ(differingPixels(*clean.image, *degraded.image), 0u);
    }
}

TEST(Degradation, RetryRateBreakerTripsUnderHeavyFaults)
{
    FaultKnobs k;
    k.linkBer = 0.2; // very noisy links
    k.retryRateThreshold = 0.05;
    for (Design d : {Design::STfim, Design::ATfim}) {
        SCOPED_TRACE(designName(d));
        SimResult r = run(d, k);
        EXPECT_GT(r.pimFallbacks, 0u);
        ASSERT_TRUE(r.image);
    }
}

} // namespace
} // namespace texpim
