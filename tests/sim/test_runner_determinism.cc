/**
 * @file
 * The ExperimentRunner determinism contract: for a fixed spec vector,
 * per-spec cycles, images, stat snapshots and fault totals are
 * bit-identical whatever the worker count — jobs=4 must reproduce
 * jobs=1 exactly, and the submission-order reductions (merged stats,
 * serialized JSON) must be byte-identical. Also pins down the
 * SimContext isolation the runner is built on.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/sim_context.hh"
#include "common/stat_export.hh"
#include "sim/runner/experiment_runner.hh"

namespace texpim {
namespace {

/** The fig10-style grid of the acceptance test: four designs over two
 *  small workloads = 8 independent specs. */
std::vector<ExperimentSpec>
eightSpecs()
{
    std::vector<ExperimentSpec> specs;
    for (Design d : {Design::Baseline, Design::BPim, Design::STfim,
                     Design::ATfim}) {
        for (Game g : {Game::Riddick, Game::Doom3}) {
            ExperimentSpec spec;
            spec.config.design = d;
            spec.workload = Workload{g, 96, 64};
            spec.frame = 3;
            specs.push_back(spec);
        }
    }
    return specs;
}

std::vector<ExperimentResult>
runWith(unsigned jobs, const std::vector<ExperimentSpec> &specs)
{
    RunnerOptions opt;
    opt.jobs = jobs;
    return ExperimentRunner(opt).run(specs);
}

TEST(RunnerDeterminism, FourWorkersReproduceSerialBitExactly)
{
    std::vector<ExperimentSpec> specs = eightSpecs();
    std::vector<ExperimentResult> serial = runWith(1, specs);
    std::vector<ExperimentResult> parallel = runWith(4, specs);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(serial[i].name);
        EXPECT_EQ(serial[i].name, parallel[i].name);
        EXPECT_EQ(serial[i].result.frame.frameCycles,
                  parallel[i].result.frame.frameCycles);
        EXPECT_EQ(serial[i].result.textureFilterCycles,
                  parallel[i].result.textureFilterCycles);
        EXPECT_EQ(serial[i].result.offChipTotalBytes,
                  parallel[i].result.offChipTotalBytes);
        EXPECT_EQ(serial[i].imageFnv1a, parallel[i].imageFnv1a);
        EXPECT_EQ(serial[i].totalFaults, parallel[i].totalFaults);
        // The full per-spec stat snapshot, every key and value.
        EXPECT_EQ(serial[i].stats, parallel[i].stats);
    }

    // Submission-order reductions are byte-identical downstream too.
    StatRegistry::Snapshot m1 = mergedStats(serial);
    StatRegistry::Snapshot m4 = mergedStats(parallel);
    EXPECT_EQ(m1, m4);
    EXPECT_EQ(snapshotToJson(m1, specs.size()),
              snapshotToJson(m4, specs.size()));
    EXPECT_EQ(snapshotToCsv(m1), snapshotToCsv(m4));
}

TEST(RunnerDeterminism, JobsZeroMeansHardwareConcurrency)
{
    RunnerOptions opt;
    opt.jobs = 0;
    ExperimentRunner runner(opt);
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    EXPECT_EQ(runner.effectiveJobs(100), std::min<unsigned>(hw, 100));
    // Never more workers than specs, and never zero.
    EXPECT_EQ(runner.effectiveJobs(1), 1u);
    opt.jobs = 16;
    EXPECT_EQ(ExperimentRunner(opt).effectiveJobs(3), 3u);
}

TEST(RunnerDeterminism, ResultsArriveInSubmissionOrder)
{
    // Mixed sizes so completion order differs from submission order
    // under any schedule; results must still line up with the specs.
    std::vector<ExperimentSpec> specs;
    for (unsigned w : {192u, 64u, 160u, 96u}) {
        ExperimentSpec spec;
        spec.config.design = Design::Baseline;
        spec.workload = Workload{Game::Riddick, w, 48};
        specs.push_back(spec);
    }
    std::vector<ExperimentResult> results = runWith(4, specs);
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(results[i].name, specs[i].defaultLabel());
}

TEST(RunnerDeterminism, MergedStatsSumPerSpecSnapshots)
{
    std::vector<ExperimentSpec> specs = eightSpecs();
    specs.resize(2); // Baseline on both workloads
    std::vector<ExperimentResult> results = runWith(2, specs);

    StatRegistry::Snapshot merged = mergedStats(results);
    EXPECT_DOUBLE_EQ(merged.at("renderer.frames"), 2.0);
    EXPECT_DOUBLE_EQ(merged.at("renderer.fragments_shaded"),
                     results[0].stats.at("renderer.fragments_shaded") +
                         results[1].stats.at("renderer.fragments_shaded"));
}

// --- SimContext isolation: what makes the above safe ---------------

TEST(SimContextIsolation, ScopeInstallsAndRestores)
{
    SimContext &before = SimContext::current();
    {
        SimContext ctx;
        SimContext::Scope scope(ctx);
        EXPECT_EQ(&SimContext::current(), &ctx);
        EXPECT_NE(&SimContext::current(), &before);
        {
            SimContext inner;
            SimContext::Scope nested(inner);
            EXPECT_EQ(&SimContext::current(), &inner);
        }
        EXPECT_EQ(&SimContext::current(), &ctx);
    }
    EXPECT_EQ(&SimContext::current(), &before);
}

TEST(SimContextIsolation, StatGroupsLandInTheScopedRegistry)
{
    // Bind the process-default registry *before* installing a scope:
    // inside one, StatRegistry::instance() deliberately resolves to
    // the scoped registry (that is the compat shim's contract).
    StatRegistry &def = SimContext::processDefault().stats();
    size_t default_size = def.size();
    SimContext ctx;
    {
        SimContext::Scope scope(ctx);
        EXPECT_EQ(&StatRegistry::instance(), &ctx.stats());
        StatGroup g("scoped_group");
        g.counter("c", "scoped counter") += 7;
        EXPECT_EQ(ctx.stats().size(), 1u);
        EXPECT_DOUBLE_EQ(ctx.stats().snapshot().at("scoped_group.c"), 7.0);
        // The process-default registry did not see it.
        EXPECT_EQ(def.size(), default_size);
    }
    // The group died with the inner block, unregistering from ctx.
    EXPECT_EQ(ctx.stats().size(), 0u);
    EXPECT_EQ(&StatRegistry::instance(), &def);
}

TEST(SimContextIsolation, GroupUnregistersFromItsBirthRegistry)
{
    SimContext ctx;
    auto *g = [&] {
        SimContext::Scope scope(ctx);
        return new StatGroup("short_lived");
    }();
    EXPECT_EQ(ctx.stats().size(), 1u);
    delete g; // no scope installed here
    EXPECT_EQ(ctx.stats().size(), 0u);
}

TEST(SimContextIsolation, ThreadsSeeTheirOwnContexts)
{
    SimContext a, b;
    const StatRegistry *seen_a = nullptr, *seen_b = nullptr;
    std::thread ta([&] {
        SimContext::Scope scope(a);
        StatGroup g("thread_a");
        g.counter("c", "") += 1;
        seen_a = &SimContext::current().stats();
    });
    std::thread tb([&] {
        SimContext::Scope scope(b);
        StatGroup g("thread_b");
        g.counter("c", "") += 1;
        seen_b = &SimContext::current().stats();
    });
    ta.join();
    tb.join();
    EXPECT_EQ(seen_a, &a.stats());
    EXPECT_EQ(seen_b, &b.stats());
    // Each context saw exactly its own thread's group, nothing leaked
    // into the process default.
    EXPECT_EQ(a.stats().size(), 0u) << "groups unregister at scope exit";
    EXPECT_EQ(b.stats().size(), 0u);
}

} // namespace
} // namespace texpim
