#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/stat_export.hh"
#include "common/stat_registry.hh"
#include "common/trace_events.hh"
#include "sim/simulator.hh"

namespace texpim {
namespace {

/** A tiny frame that still drives rasterization, texturing and the
 *  memory system (and the PIM paths when the design has them). */
Scene
tinyScene()
{
    Workload wl{Game::Riddick, 96, 64};
    Scene s = buildGameScene(wl, 3);
    s.settings.maxAniso = 8;
    return s;
}

SimResult
renderTraced(Design d, const std::string &trace_path)
{
    SimConfig cfg;
    cfg.design = d;
    RenderingSimulator sim(cfg);
    TraceEvents::instance().enable(trace_path);
    SimResult r = sim.renderScene(tinyScene());
    TraceEvents::instance().disable();
    return r;
}

class ObservabilityTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        if (TraceEvents::active())
            TraceEvents::instance().disable();
    }
};

#if TEXPIM_TRACING // trace-content tests need the instrumentation live

TEST_F(ObservabilityTest, TraceIsWellFormedBalancedAndMultiCategory)
{
    renderTraced(Design::ATfim, "");
    json::Value doc = json::parse(TraceEvents::instance().toJson());

    std::set<std::string> cats;
    u64 begins = 0, ends = 0;
    const json::Value &evs = doc.at("traceEvents");
    ASSERT_FALSE(evs.array.empty());
    for (const json::Value &e : evs.array) {
        cats.insert(e.at("cat").string);
        const std::string &ph = e.at("ph").string;
        if (ph == "B")
            ++begins;
        else if (ph == "E")
            ++ends;
        // Every event carries a timestamp and a track.
        EXPECT_EQ(e.at("ts").kind, json::Value::Kind::Number);
        EXPECT_EQ(e.at("tid").kind, json::Value::Kind::Number);
    }
    EXPECT_EQ(begins, ends);
    EXPECT_GT(begins, 0u);
    // The A-TFIM design exercises rasterization, per-frame spans, the
    // HMC vaults and the in-memory filtering logic.
    EXPECT_GE(cats.size(), 4u) << "categories seen: " << cats.size();
    EXPECT_TRUE(cats.count("raster"));
    EXPECT_TRUE(cats.count("frame"));
    EXPECT_TRUE(cats.count("dram"));
    EXPECT_TRUE(cats.count("pim"));
}

TEST_F(ObservabilityTest, BaselineTraceCoversTexturePath)
{
    renderTraced(Design::Baseline, "");
    json::Value doc = json::parse(TraceEvents::instance().toJson());
    std::set<std::string> cats;
    for (const json::Value &e : doc.at("traceEvents").array)
        cats.insert(e.at("cat").string);
    EXPECT_TRUE(cats.count("raster"));
    EXPECT_TRUE(cats.count("texture"));
    EXPECT_TRUE(cats.count("dram"));
    EXPECT_TRUE(cats.count("frame"));
}

TEST_F(ObservabilityTest, TracingDoesNotChangeSimulatedTiming)
{
    SimConfig cfg;
    cfg.design = Design::Baseline;
    Scene s = tinyScene();

    RenderingSimulator plain(cfg);
    SimResult untraced = plain.renderScene(s);

    SimResult traced = renderTraced(Design::Baseline, "");

    EXPECT_EQ(untraced.frame.frameCycles, traced.frame.frameCycles);
    EXPECT_EQ(untraced.textureFilterCycles, traced.textureFilterCycles);
    EXPECT_EQ(untraced.offChipTotalBytes, traced.offChipTotalBytes);
}

#endif // TEXPIM_TRACING

TEST_F(ObservabilityTest, RegistryExportCoversTheWholePipeline)
{
    SimConfig cfg;
    cfg.design = Design::Baseline;
    RenderingSimulator sim(cfg);
    (void)sim.renderScene(tinyScene());

    json::Value doc = json::parse(statsToJson());
    EXPECT_EQ(doc.at("schema").string, "texpim-stats-v1");

    std::set<std::string> names;
    bool renderer_has_hist = false;
    for (const json::Value &g : doc.at("groups").array) {
        names.insert(g.at("name").string);
        if (g.at("name").string == "renderer") {
            for (const json::Value &h : g.at("histograms").array) {
                if (h.at("name").string != "tile_cycles")
                    continue;
                renderer_has_hist = true;
                EXPECT_GT(h.at("samples").number, 0.0);
                EXPECT_GE(h.at("p95").number, h.at("p50").number);
                EXPECT_FALSE(h.at("buckets").array.empty());
            }
        }
    }
    // Renderer, memory system and texture path all present.
    EXPECT_TRUE(names.count("renderer"));
    EXPECT_TRUE(names.count("gddr5"));
    EXPECT_TRUE(names.count("tex_host"));
    EXPECT_TRUE(renderer_has_hist);
}

TEST_F(ObservabilityTest, PerFrameSnapshotDeltaTracksOneFrame)
{
    SimConfig cfg;
    cfg.design = Design::Baseline;
    RenderingSimulator sim(cfg);

    // Snapshot the freshly built (zeroed) pipeline, render one frame,
    // and the registry-level delta is exactly that frame's work.
    StatRegistry &reg = StatRegistry::instance();
    StatRegistry::Snapshot before = reg.snapshot();
    SimResult r = sim.renderScene(tinyScene());

    StatRegistry::Snapshot d = reg.delta(before);
    EXPECT_DOUBLE_EQ(d.at("renderer.frames"), 1.0);
    EXPECT_DOUBLE_EQ(d.at("renderer.fragments_shaded"),
                     double(r.frame.fragmentsShaded));
}

} // namespace
} // namespace texpim
