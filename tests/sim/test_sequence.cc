#include <gtest/gtest.h>

#include "quality/image_metrics.hh"
#include "sim/simulator.hh"

namespace texpim {
namespace {

const Workload kWl{Game::Riddick, 320, 240};

TEST(Sequence, RendersRequestedFrameCount)
{
    SimConfig cfg;
    cfg.design = Design::Baseline;
    RenderingSimulator sim(cfg);
    auto frames = sim.renderSequence(kWl, 3);
    ASSERT_EQ(frames.size(), 3u);
    for (const auto &f : frames) {
        EXPECT_GT(f.frame.frameCycles, 0u);
        ASSERT_TRUE(f.image);
    }
}

TEST(Sequence, CameraMovesSoFramesDiffer)
{
    SimConfig cfg;
    cfg.design = Design::Baseline;
    RenderingSimulator sim(cfg);
    auto frames = sim.renderSequence(kWl, 2);
    EXPECT_GT(differingPixels(*frames[0].image, *frames[1].image), 100u);
}

TEST(Sequence, WarmCachesCutTextureTraffic)
{
    // Frame-to-frame texel reuse: frame 1 rendered warm (after frame
    // 0) fetches less texture data off-chip than the same frame
    // rendered cold. (Comparing against frame 0 instead would be
    // confounded by the camera moving to a different working set.)
    SimConfig cfg;
    cfg.design = Design::Baseline;
    RenderingSimulator warm_sim(cfg);
    auto frames = warm_sim.renderSequence(kWl, 2);

    RenderingSimulator cold_sim(cfg);
    SimResult cold = cold_sim.renderScene(buildGameScene(kWl, 1));

    // LRU gives no strict guarantee (warm tags can perturb evictions
    // a little), but warm rendering must be in the cold frame's
    // neighborhood, never a blowup.
    u64 warm_tex =
        frames[1].offChipBytesByClass[unsigned(TrafficClass::Texture)];
    u64 cold_tex =
        cold.offChipBytesByClass[unsigned(TrafficClass::Texture)];
    EXPECT_LT(warm_tex, cold_tex + cold_tex / 10);
}

TEST(Sequence, WarmFramesMatchColdRenderingFunctionally)
{
    // Timing state is rewound per frame, but the image of frame N in a
    // sequence must equal frame N rendered cold (caches never change
    // values for the exact designs).
    SimConfig cfg;
    cfg.design = Design::Baseline;
    RenderingSimulator seq_sim(cfg);
    auto frames = seq_sim.renderSequence(kWl, 2);

    RenderingSimulator cold(cfg);
    SimResult f1 = cold.renderScene(buildGameScene(kWl, 1));
    EXPECT_EQ(differingPixels(*frames[1].image, *f1.image), 0u);
}

TEST(Sequence, ATfimInterFrameAngleChangesForceRecalcs)
{
    // SV-C's motivating case: "parent texels from different frames
    // have the same fetching address but different camera angles".
    // With warm caches, later frames' recalculations are exactly the
    // inter-frame angle drift.
    SimConfig cfg;
    cfg.design = Design::ATfim;
    cfg.angleThresholdRad = kThreshold0005Pi; // strict: catch drift
    RenderingSimulator sim(cfg);
    auto frames = sim.renderSequence(kWl, 3);
    EXPECT_GT(frames[1].angleRecalcs, 0u);
    EXPECT_GT(frames[2].angleRecalcs, 0u);
}

TEST(Sequence, ATfimNoRecalcNeverRecalculatesAcrossFrames)
{
    SimConfig cfg;
    cfg.design = Design::ATfim;
    cfg.angleThresholdRad = kThresholdNoRecalc;
    RenderingSimulator sim(cfg);
    auto frames = sim.renderSequence(kWl, 3);
    for (const auto &f : frames)
        EXPECT_EQ(f.angleRecalcs, 0u);
}

TEST(Sequence, PerFrameTrafficIsAccountedSeparately)
{
    SimConfig cfg;
    cfg.design = Design::Baseline;
    RenderingSimulator sim(cfg);
    auto frames = sim.renderSequence(kWl, 2);
    // Each frame reports its own traffic, not a running total: frame 1
    // (warm) must be below 1.5x of the cold frame's bytes.
    EXPECT_LT(frames[1].offChipTotalBytes,
              frames[0].offChipTotalBytes * 3 / 2);
    EXPECT_GT(frames[1].offChipTotalBytes, 0u);
}

TEST(SequenceDeath, EmptySequencePanics)
{
    SimConfig cfg;
    RenderingSimulator sim(cfg);
    EXPECT_DEATH({ sim.renderSequence(kWl, 0); }, "empty sequence");
}

} // namespace
} // namespace texpim
