/**
 * @file
 * The profiler + traffic-attribution contracts, end to end:
 *
 *  - accounting identity: every off-chip byte the attribution charges
 *    to (class, texture, mip, lane) reproduces the memory model's
 *    off-chip traffic meters exactly, per class, for all four designs;
 *  - determinism: the zone-tree and attribution JSON exports are
 *    byte-identical across gpu.render_threads (fused 0, serial 1,
 *    pooled 4) and untouched by ExperimentRunner worker counts;
 *  - zero overhead off: with the profiler disabled a render charges no
 *    zone and installs no traffic sink, and enabling it changes
 *    neither the cycle count nor the image.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/prof/profiler.hh"
#include "common/sim_context.hh"
#include "common/stat_export.hh"
#include "quality/image_metrics.hh"
#include "scene/game_profiles.hh"
#include "sim/attribution/attribution.hh"
#include "sim/runner/experiment_runner.hh"
#include "sim/simulator.hh"

namespace texpim {
namespace {

Scene
testScene(unsigned width, unsigned height)
{
    Workload wl{Game::Doom3, width, height};
    Scene scene = buildGameScene(wl, 3, 0x7e01d);
    scene.settings.maxAniso = defaultMaxAniso(width);
    return scene;
}

TEST(TrafficAttributionIdentity, OffChipBytesReproduceMetersExactly)
{
    Scene scene = testScene(320, 240);
    for (Design d : {Design::Baseline, Design::BPim, Design::STfim,
                     Design::ATfim}) {
        SCOPED_TRACE(designName(d));
        SimContext ctx;
        SimContext::Scope scope(ctx);
        SimConfig cfg;
        cfg.design = d;
        RenderingSimulator sim(cfg);
        Profiler::instance().enable();
        SimResult r = sim.renderScene(scene);
        Profiler::instance().disable();

        const TrafficAttribution *a = sim.attribution();
        ASSERT_NE(a, nullptr);
        u64 total = 0;
        for (unsigned c = 0; c < kNumTrafficClasses; ++c) {
            EXPECT_EQ(
                a->bytesByClass(TrafficChannel::OffChip, TrafficClass(c)),
                r.offChipBytesByClass[c])
                << "traffic class " << c;
            total += r.offChipBytesByClass[c];
        }
        EXPECT_EQ(a->totalBytes(TrafficChannel::OffChip),
                  r.offChipTotalBytes);
        EXPECT_EQ(total, r.offChipTotalBytes);
    }
}

/** Render under a fresh context and return the deterministic profile
 *  and attribution exports. */
std::pair<std::string, std::string>
profAndAttribJson(Design d, unsigned render_threads, const Scene &scene)
{
    SimContext ctx;
    SimContext::Scope scope(ctx);
    SimConfig cfg;
    cfg.design = d;
    cfg.gpu.deterministicSchedule = true;
    cfg.gpu.renderThreads = render_threads;
    RenderingSimulator sim(cfg);
    Profiler::instance().enable();
    sim.renderScene(scene);
    Profiler::instance().disable();

    JsonWriter prof;
    Profiler::instance().writeJson(prof);
    JsonWriter attrib;
    sim.attribution()->writeJson(attrib);
    return {prof.str(), attrib.str()};
}

TEST(ProfilerDeterminism, ExportsByteIdenticalAcrossRenderThreads)
{
    Scene scene = testScene(160, 120);
    for (Design d : {Design::Baseline, Design::STfim}) {
        SCOPED_TRACE(designName(d));
        auto serial = profAndAttribJson(d, 1, scene);
        auto fused = profAndAttribJson(d, 0, scene);
        auto pooled = profAndAttribJson(d, 4, scene);
        // Two-phase with a 4-worker pool reproduces the serial
        // pipeline byte for byte (rules D1-D4: workers never charge).
        EXPECT_EQ(serial.first, pooled.first);
        EXPECT_EQ(serial.second, pooled.second);
        // The fused loop charges the same deterministic quantities.
        EXPECT_EQ(serial.first, fused.first);
        EXPECT_EQ(serial.second, fused.second);
    }
}

/** Enable the caller's profiler, charge one marker row, run a sweep
 *  with `jobs` workers, and export the caller's zone tree. */
std::string
profJsonAfterSweep(unsigned jobs)
{
    SimContext ctx;
    SimContext::Scope scope(ctx);
    Profiler::instance().enable();
    TEXPIM_PROF_CYCLES(prof::kZoneFrame, 7);

    std::vector<ExperimentSpec> specs;
    for (Design d : {Design::Baseline, Design::ATfim}) {
        ExperimentSpec spec;
        spec.config.design = d;
        spec.workload = Workload{Game::Doom3, 96, 64};
        spec.frame = 3;
        specs.push_back(spec);
    }
    RunnerOptions opt;
    opt.jobs = jobs;
    ExperimentRunner(opt).run(specs);

    Profiler::instance().disable();
    JsonWriter w;
    Profiler::instance().writeJson(w);
    return w.str();
}

TEST(ProfilerDeterminism, RunnerJobsNeverChargeTheCallersProfiler)
{
    std::string serial = profJsonAfterSweep(1);
    std::string parallel = profJsonAfterSweep(4);
    EXPECT_EQ(serial, parallel);

    // Worker contexts own their (disabled) profilers, so the caller's
    // tree still holds exactly the marker charge and nothing else.
    json::Value doc = json::parse(serial);
    ASSERT_FALSE(doc.array.empty());
    EXPECT_EQ(doc.array[0].at("zone").string, "frame");
    EXPECT_DOUBLE_EQ(doc.array[0].at("cycles").number, 7.0);
    for (size_t i = 1; i < doc.array.size(); ++i)
        EXPECT_DOUBLE_EQ(doc.array[i].at("count").number, 0.0)
            << doc.array[i].at("zone").string;
}

TEST(ProfilerOffContract, DisabledRenderChargesNothingAndChangesNothing)
{
    Scene scene = testScene(160, 120);
    u64 cycles_off = 0, hash_off = 0;
    {
        SimContext ctx;
        SimContext::Scope scope(ctx);
        SimConfig cfg;
        cfg.design = Design::ATfim;
        RenderingSimulator sim(cfg);
        ASSERT_FALSE(Profiler::active());
        SimResult r = sim.renderScene(scene);
        cycles_off = r.frame.frameCycles;
        hash_off = imageHash(*r.image);
        // No sink, no zone ever touched: the off path is macro-dead.
        EXPECT_EQ(sim.attribution(), nullptr);
        for (unsigned z = 1; z < prof::kZoneCount; ++z) {
            const Profiler::ZoneRow &row =
                Profiler::instance().row(prof::ZoneId(z));
            EXPECT_EQ(row.count, 0u) << prof::kZones[z].name;
            EXPECT_EQ(row.cycles, 0u) << prof::kZones[z].name;
        }
    }
    {
        SimContext ctx;
        SimContext::Scope scope(ctx);
        SimConfig cfg;
        cfg.design = Design::ATfim;
        RenderingSimulator sim(cfg);
        Profiler::instance().enable();
        SimResult r = sim.renderScene(scene);
        Profiler::instance().disable();
        // Observation never perturbs the simulation.
        EXPECT_EQ(r.frame.frameCycles, cycles_off);
        EXPECT_EQ(imageHash(*r.image), hash_off);
        EXPECT_GT(Profiler::instance().row(prof::kZoneFrame).cycles, 0u);
        EXPECT_NE(sim.attribution(), nullptr);
    }
}

} // namespace
} // namespace texpim
