/**
 * @file
 * Inter-frame pipeline tests: renderSequence must produce bit-identical
 * per-frame images, cycle counts and statistics at every
 * gpu.pipeline_depth x gpu.render_threads combination (the pipelined
 * functional phase cannot be allowed to perturb the timing replay),
 * plus golden-hash chains for two game sequences, inter-frame reuse
 * accounting, the prefetch tile schedule, and the replay peak-memory
 * bound.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/sim_context.hh"
#include "common/stat_registry.hh"
#include "quality/image_metrics.hh"
#include "sim/sequence.hh"
#include "sim/simulator.hh"

namespace texpim {
namespace {

// Small frame so the full depth x threads x design matrix stays fast;
// the golden chains below use the paper's 320x240.
const Workload kSmall{Game::Riddick, 160, 120};

SimConfig
seqCfg(Design d, unsigned threads, unsigned depth)
{
    SimConfig cfg;
    cfg.design = d;
    cfg.gpu.renderThreads = threads;
    cfg.gpu.pipelineDepth = depth;
    return cfg;
}

/** Everything one frame must hold invariant across pipeline shapes. */
struct FramePrint
{
    u64 image;
    Cycle cycles;
    u64 filterCycles;
    u64 offChip;
    u64 recalcs;
    u64 tagHits;
    u64 uniqueBlocks;
    u64 reusedPrev;

    bool
    operator==(const FramePrint &o) const
    {
        return image == o.image && cycles == o.cycles &&
               filterCycles == o.filterCycles && offChip == o.offChip &&
               recalcs == o.recalcs && tagHits == o.tagHits &&
               uniqueBlocks == o.uniqueBlocks && reusedPrev == o.reusedPrev;
    }
};

struct SeqPrint
{
    std::vector<FramePrint> frames;
    StatRegistry::Snapshot stats;
};

SeqPrint
runSeq(const SimConfig &cfg, const Workload &wl, unsigned num_frames)
{
    SimContext ctx;
    SimContext::Scope scope(ctx);
    RenderingSimulator sim(cfg);
    auto results = sim.renderSequence(wl, num_frames);
    SeqPrint out;
    for (const SimResult &r : results)
        out.frames.push_back({imageHash(*r.image), r.frame.frameCycles,
                              r.textureFilterCycles, r.offChipTotalBytes,
                              r.angleRecalcs, r.interFrameTagHits,
                              r.seqUniqueBlocks, r.seqBlocksReusedPrev});
    // Snapshot while the simulator is alive: the full registry, every
    // group (renderer, caches, memory, sequence) and every value.
    out.stats = ctx.stats().snapshot();
    return out;
}

TEST(SequencePipeline, DepthAndThreadsAreBitInvariant)
{
    // The ISSUE's core acceptance: every pipeline_depth x
    // render_threads combination, all four designs, identical frames
    // AND identical end-of-run stat registry.
    for (Design d : {Design::Baseline, Design::BPim, Design::STfim,
                     Design::ATfim}) {
        SeqPrint ref = runSeq(seqCfg(d, 1, 1), kSmall, 3);
        ASSERT_EQ(ref.frames.size(), 3u);
        for (unsigned threads : {1u, 4u}) {
            for (unsigned depth : {1u, 2u, 4u}) {
                SCOPED_TRACE(std::string(designName(d)) + " threads=" +
                             std::to_string(threads) + " depth=" +
                             std::to_string(depth));
                SeqPrint run = runSeq(seqCfg(d, threads, depth), kSmall, 3);
                ASSERT_EQ(run.frames.size(), ref.frames.size());
                for (size_t f = 0; f < ref.frames.size(); ++f) {
                    SCOPED_TRACE("frame " + std::to_string(f));
                    EXPECT_TRUE(run.frames[f] == ref.frames[f]);
                    EXPECT_EQ(run.frames[f].image, ref.frames[f].image);
                    EXPECT_EQ(run.frames[f].cycles, ref.frames[f].cycles);
                }
                EXPECT_EQ(run.stats, ref.stats);
            }
        }
    }
}

TEST(SequencePipeline, RoundRobinSchedulerInvariantToo)
{
    // Same contract under the pinned round-robin scheduler (the other
    // scheduler renderSequence supports); the horizon scheduler is the
    // default exercised above.
    for (Design d : {Design::Baseline, Design::ATfim}) {
        SCOPED_TRACE(designName(d));
        SimConfig serial = seqCfg(d, 1, 1);
        serial.gpu.deterministicSchedule = true;
        SimConfig piped = seqCfg(d, 4, 4);
        piped.gpu.deterministicSchedule = true;
        SeqPrint a = runSeq(serial, kSmall, 3);
        SeqPrint b = runSeq(piped, kSmall, 3);
        ASSERT_EQ(a.frames.size(), b.frames.size());
        for (size_t f = 0; f < a.frames.size(); ++f)
            EXPECT_TRUE(a.frames[f] == b.frames[f]) << "frame " << f;
        EXPECT_EQ(a.stats, b.stats);
    }
}

TEST(SequencePipeline, ReuseAccountingSeesFrameToFrameOverlap)
{
    SimConfig cfg = seqCfg(Design::Baseline, 1, 1);
    SimContext ctx;
    SimContext::Scope scope(ctx);
    RenderingSimulator sim(cfg);
    auto frames = sim.renderSequence(kSmall, 2);

    // Frame 0 touches blocks but has no predecessor to reuse from.
    EXPECT_GT(frames[0].seqUniqueBlocks, 0u);
    EXPECT_EQ(frames[0].seqBlocksReusedPrev, 0u);
    EXPECT_EQ(frames[0].interFrameTagHits, 0u);

    // The camera pans smoothly, so consecutive frames share most of
    // their texel working set — both in the footprint census and as
    // warm tag-cache hits.
    EXPECT_GT(frames[1].seqBlocksReusedPrev, 0u);
    EXPECT_LE(frames[1].seqBlocksReusedPrev, frames[1].seqUniqueBlocks);
    EXPECT_GT(frames[1].interFrameTagHits, 0u);

    // And the "sequence" stat group accumulates the same numbers.
    StatRegistry::Snapshot s = ctx.stats().snapshot();
    EXPECT_EQ(s.at("sequence.frames"), 2.0);
    EXPECT_EQ(s.at("sequence.unique_blocks"),
              double(frames[0].seqUniqueBlocks + frames[1].seqUniqueBlocks));
    EXPECT_EQ(s.at("sequence.blocks_reused_prev"),
              double(frames[1].seqBlocksReusedPrev));
    EXPECT_EQ(s.at("sequence.interframe_tag_hits"),
              double(frames[1].interFrameTagHits));
}

TEST(SequencePipeline, AtfimCountsInterFrameTagReuse)
{
    // A-TFIM's angle caches stay warm across frames by design (§V-C);
    // the epoch counters must see that as inter-frame hits.
    SimConfig cfg = seqCfg(Design::ATfim, 1, 2);
    SimContext ctx;
    SimContext::Scope scope(ctx);
    RenderingSimulator sim(cfg);
    auto frames = sim.renderSequence(kSmall, 2);
    EXPECT_EQ(frames[0].interFrameTagHits, 0u);
    EXPECT_GT(frames[1].interFrameTagHits, 0u);
}

TEST(SequencePipeline, FusedLoopStillRuns)
{
    // render_threads=0 has no separable functional phase: the sequence
    // must still render (serially) with zero block-census numbers.
    SimConfig cfg = seqCfg(Design::Baseline, 0, 4);
    SimContext ctx;
    SimContext::Scope scope(ctx);
    RenderingSimulator sim(cfg);
    auto frames = sim.renderSequence(kSmall, 2);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_GT(frames[1].frame.frameCycles, 0u);
    EXPECT_EQ(frames[0].seqUniqueBlocks, 0u);
    EXPECT_EQ(frames[1].seqBlocksReusedPrev, 0u);
    // The tag-hit counters come from the replay caches, which the
    // fused loop drives too.
    EXPECT_GT(frames[1].interFrameTagHits, 0u);
}

TEST(SequencePipeline, ReplayPeakMemoryStaysPerTile)
{
    // Satellite: the replay decodes one tile at a time, so the peak
    // decoded scratch must be far below the whole frame's decoded
    // footprint. A regression that decodes every tile up front trips
    // the 1/4 bound immediately (a 160x120 frame has 80 tiles).
    SimConfig cfg = seqCfg(Design::Baseline, 1, 1);
    SimContext ctx;
    SimContext::Scope scope(ctx);
    RenderingSimulator sim(cfg);
    SimResult r = sim.renderScene(buildGameScene(kSmall, 3));
    EXPECT_GT(r.frame.recordBytesPeak, 0u);
    EXPECT_LT(r.frame.recordBytesPeak * 4, r.frame.recordBytesDecoded);
}

TEST(SequencePipeline, PrefetchScheduleKeepsImagesAndStaysDeterministic)
{
    // gpu.schedule=prefetch reorders tile issue (a timing-model
    // experiment); the rendered image must not move, and two identical
    // runs must agree cycle-for-cycle.
    SimConfig base = seqCfg(Design::Baseline, 1, 1);
    SeqPrint ref = runSeq(base, kSmall, 2);

    SimConfig pf = base;
    pf.gpu.schedule = GpuParams::Schedule::Prefetch;
    SeqPrint a = runSeq(pf, kSmall, 2);
    SeqPrint b = runSeq(pf, kSmall, 2);

    for (size_t f = 0; f < ref.frames.size(); ++f) {
        EXPECT_EQ(a.frames[f].image, ref.frames[f].image) << "frame " << f;
        EXPECT_GT(a.frames[f].cycles, 0u);
        // Determinism: prefetch reordering is a pure function of the
        // recorded streams.
        EXPECT_TRUE(a.frames[f] == b.frames[f]) << "frame " << f;
    }
    EXPECT_EQ(a.stats, b.stats);
}

TEST(SequencePipelineDeath, PrefetchNeedsRecordedStreams)
{
    // The fused loop records no streams, so there is nothing to
    // prefetch from; asking for both is a config error.
    SimConfig cfg = seqCfg(Design::Baseline, 0, 1);
    cfg.gpu.schedule = GpuParams::Schedule::Prefetch;
    RenderingSimulator sim(cfg);
    EXPECT_DEATH({ sim.renderScene(buildGameScene(kSmall, 0)); },
                 "prefetch");
}

// --- Golden per-frame hash chains (satellite) -----------------------
//
// Rendered with the same spec as tests/quality/test_golden_images.cc
// (320x240, gpu.deterministic_schedule=1, frames 3..5 of the camera
// path). Frame hashes chain the whole sequence: a regression in warm-
// cache state that only shows up mid-sequence fails on the exact frame
// it perturbs. Baseline is an exact design, so each sequence frame
// also equals that frame rendered cold — frame 3's hash is the same
// constant the single-frame golden test pins.
struct GoldenChain
{
    Game game;
    u64 hashes[3];
};

const GoldenChain kChains[] = {
    // Frame 3 of each chain equals the corresponding single-frame
    // golden in tests/quality/test_golden_images.cc — keep them in
    // sync when regenerating.
    {Game::Doom3,
     {0x5cc24ff74d8da65aull, 0xd800474c5b9fdb5full,
      0xd5666d77c67826b2ull}},
    {Game::HalfLife2,
     {0x3a10fe761ff574fdull, 0x987aec383dabebacull,
      0x9fe8ac6b4223775aull}},
};

TEST(SequencePipeline, GoldenHashChains)
{
    for (const GoldenChain &chain : kChains) {
        SimConfig cfg = seqCfg(Design::Baseline, 1, 2);
        cfg.gpu.deterministicSchedule = true;
        SimContext ctx;
        SimContext::Scope scope(ctx);
        RenderingSimulator sim(cfg);
        auto frames =
            sim.renderSequence(Workload{chain.game, 320, 240}, 3, 3);
        ASSERT_EQ(frames.size(), 3u);
        for (unsigned f = 0; f < 3; ++f) {
            EXPECT_EQ(imageHash(*frames[f].image), chain.hashes[f])
                << gameName(chain.game) << " frame " << (3 + f)
                << " hash moved; if intentional, update the chain. got 0x"
                << std::hex << imageHash(*frames[f].image);
        }
    }
}

// --- PSNR over frames for the A-TFIM threshold sweep (satellite) ----

TEST(SequencePipeline, AtfimPsnrOverFramesByThreshold)
{
    // Per-frame exact references from the Baseline sequence, then the
    // A-TFIM approximation at three thresholds. Warm caches mean later
    // frames reuse more stale-angle parents, so the sequence is the
    // stress case the single-frame PSNR test cannot see. Quality must
    // stay visually lossless at the paper's default threshold on every
    // frame, and loosening the threshold must never *improve* quality.
    constexpr unsigned kFrames = 3;
    SimConfig base = seqCfg(Design::Baseline, 1, 1);
    SimContext bctx;
    std::vector<SimResult> exact;
    {
        SimContext::Scope scope(bctx);
        RenderingSimulator sim(base);
        exact = sim.renderSequence(kSmall, kFrames);
    }

    const float thresholds[] = {kThreshold0005Pi, kThreshold001Pi,
                                kThresholdNoRecalc};
    double min_psnr[3];
    for (int t = 0; t < 3; ++t) {
        SimConfig cfg = seqCfg(Design::ATfim, 1, 2);
        cfg.angleThresholdRad = thresholds[t];
        SimContext ctx;
        SimContext::Scope scope(ctx);
        RenderingSimulator sim(cfg);
        auto frames = sim.renderSequence(kSmall, kFrames);
        min_psnr[t] = kIdenticalPsnr;
        for (unsigned f = 0; f < kFrames; ++f)
            min_psnr[t] = std::min(
                min_psnr[t], psnr(*exact[f].image, *frames[f].image));
    }
    // Strict and default thresholds: visually lossless on every frame.
    EXPECT_GE(min_psnr[0], 45.0);
    EXPECT_GE(min_psnr[1], 45.0);
    // Never recalculating is the quality floor of the sweep.
    EXPECT_LE(min_psnr[2], min_psnr[0] + 1e-9);
    EXPECT_GE(min_psnr[2], 25.0) << "no-recalc quality collapsed";
}

} // namespace
} // namespace texpim
