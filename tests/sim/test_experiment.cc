#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hh"

namespace texpim {
namespace {

TEST(Experiment, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(ExperimentDeath, GeomeanRejectsNonPositive)
{
    EXPECT_DEATH({ (void)geomean({1.0, 0.0}); }, "positive");
}

TEST(Experiment, SuiteWorkloadsDownscale)
{
    SuiteOptions opt;
    opt.resolutionDivisor = 2;
    auto wl = suiteWorkloads(opt);
    ASSERT_EQ(wl.size(), 10u);
    EXPECT_EQ(wl[0].width, 640u);  // 1280 / 2
    EXPECT_EQ(wl[0].height, 512u); // 1024 / 2
}

TEST(Experiment, ResultTablePrintsRowsAndAverage)
{
    ResultTable t("demo", {"a", "b"});
    t.addColumn("x", {1.0, 3.0});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("average"), std::string::npos);
    EXPECT_NE(s.find("2.00"), std::string::npos); // mean of 1 and 3
}

TEST(ExperimentDeath, ColumnLengthMismatchPanics)
{
    ResultTable t("demo", {"a", "b"});
    EXPECT_DEATH({ t.addColumn("x", {1.0}); }, "has 1 values for 2 rows");
}

TEST(Experiment, RunWorkloadProducesFrame)
{
    SimConfig cfg;
    cfg.design = Design::Baseline;
    SuiteOptions opt;
    opt.resolutionDivisor = 4; // tiny for speed
    Workload wl{Game::Wolfenstein, 160, 120};
    SimResult r = runWorkload(cfg, wl, opt);
    EXPECT_GT(r.frame.frameCycles, 0u);
    ASSERT_TRUE(r.image);
    EXPECT_EQ(r.image->width(), 160u);
}

} // namespace
} // namespace texpim
