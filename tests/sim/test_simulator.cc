#include <gtest/gtest.h>

#include "quality/image_metrics.hh"
#include "sim/simulator.hh"

namespace texpim {
namespace {

/** A small but real workload (riddick profile at reduced resolution)
 *  that runs all four designs in well under a second each. */
Scene
testScene()
{
    Workload wl{Game::Riddick, 320, 240};
    Scene s = buildGameScene(wl, 3);
    s.settings.maxAniso = 8;
    return s;
}

SimResult
run(Design d, float threshold = kThreshold001Pi, bool aniso = true)
{
    SimConfig cfg;
    cfg.design = d;
    cfg.angleThresholdRad = threshold;
    cfg.disableAniso = !aniso;
    RenderingSimulator sim(cfg);
    return sim.renderScene(testScene());
}

TEST(Simulator, AllDesignsRenderSaneFrames)
{
    for (Design d : {Design::Baseline, Design::BPim, Design::STfim,
                     Design::ATfim}) {
        SimResult r = run(d);
        SCOPED_TRACE(designName(d));
        EXPECT_GT(r.frame.frameCycles, 1000u);
        EXPECT_GT(r.frame.fragmentsShaded, 10'000u);
        EXPECT_GT(r.textureFilterCycles, 0u);
        EXPECT_GT(r.offChipTotalBytes, 0u);
        EXPECT_GT(r.energy.total(), 0.0);
        ASSERT_TRUE(r.image);
    }
}

TEST(Simulator, OffChipBytesEqualSumOfClasses)
{
    SimResult r = run(Design::Baseline);
    u64 sum = 0;
    for (u64 b : r.offChipBytesByClass)
        sum += b;
    EXPECT_EQ(sum, r.offChipTotalBytes);
}

TEST(Simulator, BPimImageIsBitIdenticalToBaseline)
{
    // B-PIM changes only the memory technology; filtering math is
    // untouched, so the output frame must match exactly.
    SimResult base = run(Design::Baseline);
    SimResult bpim = run(Design::BPim);
    EXPECT_EQ(differingPixels(*base.image, *bpim.image), 0u);
}

TEST(Simulator, STfimImageIsBitIdenticalToBaseline)
{
    // S-TFIM moves the texture units into memory; same math, same
    // image (§IV: "without sacrificing image quality").
    SimResult base = run(Design::Baseline);
    SimResult stfim = run(Design::STfim);
    EXPECT_EQ(differingPixels(*base.image, *stfim.image), 0u);
}

TEST(Simulator, ATfimQualityImprovesWithStricterThreshold)
{
    SimResult base = run(Design::Baseline);
    double strict = psnr(*base.image, *run(Design::ATfim,
                                           kThreshold0005Pi).image);
    double loose = psnr(*base.image,
                        *run(Design::ATfim, kThresholdNoRecalc).image);
    EXPECT_GE(strict, loose);
    EXPECT_GT(strict, 45.0); // near-lossless at the strictest setting
}

TEST(Simulator, ATfimRecalcsGrowWithStricterThreshold)
{
    u64 strict = run(Design::ATfim, kThreshold0005Pi).angleRecalcs;
    u64 dflt = run(Design::ATfim, kThreshold001Pi).angleRecalcs;
    u64 none = run(Design::ATfim, kThresholdNoRecalc).angleRecalcs;
    EXPECT_GE(strict, dflt);
    EXPECT_EQ(none, 0u);
}

TEST(Simulator, STfimInflatesTextureTraffic)
{
    // Fig. 12: package traffic blows past the baseline's texel
    // fetches.
    SimResult base = run(Design::Baseline);
    SimResult stfim = run(Design::STfim);
    EXPECT_GT(stfim.textureTrafficBytes, base.textureTrafficBytes);
}

TEST(Simulator, ATfimReducesOffChipTextureTraffic)
{
    SimResult base = run(Design::Baseline);
    SimResult atfim = run(Design::ATfim);
    EXPECT_LT(atfim.textureTrafficBytes, base.textureTrafficBytes);
}

TEST(Simulator, DisablingAnisoCutsTextureWorkAndTraffic)
{
    // The Fig. 4 experiment: anisotropic filtering is the texture
    // bandwidth hog.
    SimResult on = run(Design::Baseline);
    SimResult off = run(Design::Baseline, kThreshold001Pi, false);
    EXPECT_LT(off.textureFilterCycles, on.textureFilterCycles);
    EXPECT_LT(off.textureTrafficBytes, on.textureTrafficBytes);
}

TEST(Simulator, ATfimSpeedsUpTextureFiltering)
{
    SimResult base = run(Design::Baseline);
    SimResult atfim = run(Design::ATfim);
    EXPECT_LT(atfim.textureFilterCycles, base.textureFilterCycles);
}

TEST(Simulator, EnergyFollowsPerformance)
{
    // A-TFIM's energy saving comes mostly from its shorter frames
    // (§VII-C).
    SimResult base = run(Design::Baseline);
    SimResult atfim = run(Design::ATfim);
    if (atfim.frame.frameCycles < base.frame.frameCycles) {
        EXPECT_LT(atfim.energy.total(), base.energy.total());
    }
}

TEST(Simulator, DeterministicAcrossRuns)
{
    SimResult a = run(Design::ATfim);
    SimResult b = run(Design::ATfim);
    EXPECT_EQ(a.frame.frameCycles, b.frame.frameCycles);
    EXPECT_EQ(a.offChipTotalBytes, b.offChipTotalBytes);
    EXPECT_EQ(differingPixels(*a.image, *b.image), 0u);
}

TEST(Simulator, ConfigRoundTrip)
{
    Config cfg;
    cfg.set("design", "a-tfim");
    cfg.setDouble("atfim.angle_threshold_rad", 0.1);
    cfg.setInt("gpu.clusters", 8);
    SimConfig sc = SimConfig::fromConfig(cfg);
    EXPECT_EQ(sc.design, Design::ATfim);
    EXPECT_FLOAT_EQ(sc.angleThresholdRad, 0.1f);
    EXPECT_EQ(sc.gpu.clusters, 8u);
}

TEST(SimulatorDeath, UnknownDesignIsFatal)
{
    Config cfg;
    cfg.set("design", "warp-drive");
    EXPECT_EXIT({ (void)SimConfig::fromConfig(cfg); },
                testing::ExitedWithCode(1), "unknown design");
}

} // namespace
} // namespace texpim
