/**
 * @file
 * End-to-end tests for the texpim-lint binary: every rule fires on its
 * seeded fixture violation at the exact line, stays quiet on the clean
 * counterpart, honors allow() annotations and the baseline, and uses
 * the documented exit codes (0 clean, 1 new findings, 2 usage error).
 *
 * The fixtures live in tests/lint/fixtures/<rule>/ — each is a tiny
 * repo root of its own so the path-scoping rules (src/ vs bench/)
 * apply to the fixtures exactly as they do to the real tree. The
 * binary path and fixture root come in as compile definitions.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <sys/wait.h>

namespace {

struct LintRun
{
    int exitCode = -1;
    std::string out;
};

/** Run the lint binary with `args`, capturing stdout+stderr. */
LintRun
runLint(const std::string &args)
{
    LintRun r;
    std::string cmd = std::string(TEXPIM_LINT_BIN) + " " + args + " 2>&1";
    FILE *p = popen(cmd.c_str(), "r");
    if (p == nullptr) {
        ADD_FAILURE() << "popen failed for: " << cmd;
        return r;
    }
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, p)) > 0)
        r.out.append(buf, n);
    int status = pclose(p);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

std::string
fixture(const std::string &name)
{
    return std::string(TEXPIM_LINT_FIXTURES) + "/" + name;
}

int
countOf(const std::string &hay, const std::string &needle)
{
    int n = 0;
    for (size_t at = hay.find(needle); at != std::string::npos;
         at = hay.find(needle, at + needle.size()))
        ++n;
    return n;
}

TEST(TexpimLint, D1FlagsSeededNondeterminismAtExactLines)
{
    LintRun r = runLint("--repo-root " + fixture("d1") + " --rules D1,A0 src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    EXPECT_NE(r.out.find("src/bad_d1.cc:5: [D1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("src/bad_d1.cc:7: [D1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("src/bad_d1.cc:10: [D1]"), std::string::npos)
        << r.out;
    EXPECT_EQ(countOf(r.out, "[D1]"), 3) << r.out;
    // The clean file's lookalikes (member .time(), identifiers and
    // strings containing rand/getenv, comments) and its justified
    // allow(D1) std::time() use must all stay quiet — including A0,
    // because the justification is long enough.
    EXPECT_EQ(r.out.find("clean_d1.cc"), std::string::npos) << r.out;
    EXPECT_EQ(r.out.find("[A0]"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("3 new finding(s)"), std::string::npos) << r.out;
}

TEST(TexpimLint, D2FlagsUnorderedIterationButHonorsAllow)
{
    LintRun r = runLint("--repo-root " + fixture("d2") + " --rules D2,A0 src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    EXPECT_NE(r.out.find("src/bad_d2.cc:7: [D2]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("'table'"), std::string::npos) << r.out;
    EXPECT_EQ(countOf(r.out, "[D2]"), 1) << r.out;
    // clean_d2.cc iterates an unordered_map too, but under an
    // annotation that covers the loop on the following line.
    EXPECT_EQ(r.out.find("clean_d2.cc"), std::string::npos) << r.out;
}

TEST(TexpimLint, D3FlagsSortWithoutTieBreakComment)
{
    LintRun r = runLint("--repo-root " + fixture("d3") + " --rules D3 src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    EXPECT_NE(r.out.find("src/bad_d3.cc:6: [D3]"), std::string::npos)
        << r.out;
    EXPECT_EQ(countOf(r.out, "[D3]"), 1) << r.out;
    // clean_d3.cc uses stable_sort, and its one std::sort carries a
    // tie-break comment within the three preceding lines.
    EXPECT_EQ(r.out.find("clean_d3.cc"), std::string::npos) << r.out;
}

TEST(TexpimLint, D4FlagsMutableStaticButExemptsImmutable)
{
    LintRun r = runLint("--repo-root " + fixture("d4") + " --rules D4 src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    EXPECT_NE(r.out.find("src/bad_d4.cc:3: [D4]"), std::string::npos)
        << r.out;
    EXPECT_EQ(countOf(r.out, "[D4]"), 1) << r.out;
    // const, constexpr, thread_local, static_assert and static
    // function declarations are all exempt.
    EXPECT_EQ(r.out.find("clean_d4.cc"), std::string::npos) << r.out;
}

TEST(TexpimLint, S1FlagsUndescribedStatsOnce)
{
    LintRun r = runLint("--repo-root " + fixture("s1") + " --rules S1 src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    EXPECT_NE(r.out.find("src/bad_s1.cc:8: [S1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("'undescribed'"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("src/bad_s1.cc:9: [S1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("'undescribed_hist'"), std::string::npos) << r.out;
    EXPECT_EQ(countOf(r.out, "[S1]"), 2) << r.out;
    // Described registrations, hot-path re-lookups of described stats
    // and dynamic (conditional) names are all fine.
    EXPECT_EQ(r.out.find("clean_s1.cc"), std::string::npos) << r.out;
}

TEST(TexpimLint, S2FlagsUnregisteredZonesAndUndescribedTableRows)
{
    LintRun r = runLint("--repo-root " + fixture("s2") +
                        " --rules S2 --zone-table src/zones.hh src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // A zone charge whose argument is not a registered constant.
    EXPECT_NE(r.out.find("src/bad_s2.cc:6: [S2]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("'kZoneRogue'"), std::string::npos) << r.out;
    // An ad-hoc string-literal zone name.
    EXPECT_NE(r.out.find("src/bad_s2.cc:7: [S2]"), std::string::npos)
        << r.out;
    // A table row registered without a description.
    EXPECT_NE(r.out.find("src/zones.hh:7: [S2]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("'kZoneBare'"), std::string::npos) << r.out;
    EXPECT_EQ(countOf(r.out, "[S2]"), 3) << r.out;
    // Registered constants under any qualification, and the macro
    // definition line itself, stay quiet.
    EXPECT_EQ(r.out.find("clean_s2.cc"), std::string::npos) << r.out;
}

TEST(TexpimLint, A0FlagsTooShortJustificationButStillSuppresses)
{
    LintRun r = runLint("--repo-root " + fixture("a0") + " --rules D1,A0 src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // The annotation suppresses the D1 finding even though its reason
    // is too short — but the annotation itself is flagged.
    EXPECT_NE(r.out.find("src/short_reason.cc:3: [A0]"), std::string::npos)
        << r.out;
    EXPECT_EQ(r.out.find("[D1]"), std::string::npos) << r.out;
    EXPECT_EQ(countOf(r.out, "[A0]"), 1) << r.out;
}

TEST(TexpimLint, C1ReconcilesTableSourcesAndDocsThreeWays)
{
    LintRun r = runLint("--repo-root " + fixture("c1") +
                        " --rules C1 --key-table src/params.cc "
                        "--doc README.md src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // Read in src/ but missing from the table.
    EXPECT_NE(r.out.find("src/uses.cc:6: [C1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("'unlisted_key'"), std::string::npos) << r.out;
    // In the table but never read anywhere.
    EXPECT_NE(r.out.find("src/params.cc:5: [C1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("'dead_key'"), std::string::npos) << r.out;
    // In the table but absent from the docs.
    EXPECT_NE(r.out.find("src/params.cc:6: [C1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("'undocumented_key'"), std::string::npos) << r.out;
    // A documented key that does not exist (stale docs).
    EXPECT_NE(r.out.find("README.md:8: [C1]"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("'ghost_key'"), std::string::npos) << r.out;
    // A prose mention of a key in a known namespace that does not
    // exist (the doc-mention extension).
    EXPECT_NE(r.out.find("README.md:13: [C1]"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("'sim.ghost'"), std::string::npos) << r.out;
    EXPECT_EQ(countOf(r.out, "[C1]"), 5) << r.out;
    // used_key is listed, read and documented: never mentioned.
    EXPECT_EQ(r.out.find("'used_key'"), std::string::npos) << r.out;
    // sim.depth exists, sim.frames is a registered stat leaf, and
    // other.thing is outside every known namespace: all quiet.
    EXPECT_EQ(r.out.find("'sim.depth'"), std::string::npos) << r.out;
    EXPECT_EQ(r.out.find("'sim.frames'"), std::string::npos) << r.out;
    EXPECT_EQ(r.out.find("'other.thing'"), std::string::npos) << r.out;
}

TEST(TexpimLint, BaselineSuppressesKnownFindingsByRulePathKey)
{
    std::string root = "--repo-root " + fixture("baseline") + " --rules D1 ";

    LintRun fresh = runLint(root + "src");
    EXPECT_EQ(fresh.exitCode, 1) << fresh.out;
    EXPECT_NE(fresh.out.find("src/bad.cc:3: [D1]"), std::string::npos)
        << fresh.out;

    // --write-baseline captures the current findings and exits 0.
    std::string baseline = testing::TempDir() + "texpim_lint_baseline.txt";
    LintRun wrote = runLint(root + "--write-baseline " + baseline + " src");
    EXPECT_EQ(wrote.exitCode, 0) << wrote.out;
    EXPECT_NE(wrote.out.find("wrote 1 finding(s)"), std::string::npos)
        << wrote.out;

    // The baseline key is rule|path|key — no line number — so the
    // suppression survives the finding moving to another line.
    std::ifstream in(baseline);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("D1|src/bad.cc|rand()/srand()"),
              std::string::npos)
        << contents;

    LintRun clean = runLint(root + "--baseline " + baseline + " src");
    EXPECT_EQ(clean.exitCode, 0) << clean.out;
    EXPECT_NE(clean.out.find("0 new finding(s), 1 baselined"),
              std::string::npos)
        << clean.out;

    std::remove(baseline.c_str());
}

TEST(TexpimLint, ScannerIgnoresRawStringsSplicedCommentsAndIfZero)
{
    LintRun r =
        runLint("--repo-root " + fixture("scanner") + " --rules D1,A0 src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // Violations adjacent to the blind-spot constructs still fire: on
    // the raw-string line, in a live #else branch, and after an
    // ordinary (non-spliced) comment.
    EXPECT_NE(r.out.find("src/bad_scan.cc:4: [D1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("src/bad_scan.cc:8: [D1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("src/bad_scan.cc:11: [D1]"), std::string::npos)
        << r.out;
    EXPECT_EQ(countOf(r.out, "[D1]"), 3) << r.out;
    // rand()/getenv() inside raw strings (plain and custom-delimiter),
    // on a line hidden by a backslash-spliced line comment, and in
    // #if 0 / #if false blocks (including nesting) never fire.
    EXPECT_EQ(r.out.find("clean_scan.cc"), std::string::npos) << r.out;
}

TEST(TexpimLint, CheckBaselineFlagsStaleEntriesAndRequiresBaseline)
{
    std::string root = "--repo-root " + fixture("baseline") + " --rules D1 ";
    std::string baseline = testing::TempDir() + "texpim_lint_stale.txt";
    {
        std::ofstream out(baseline);
        out << "D1|src/bad.cc|rand()/srand()\n";      // still real
        out << "D1|src/gone.cc|rand()/srand()\n";     // stale
    }

    LintRun r =
        runLint(root + "--baseline " + baseline + " --check-baseline src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    EXPECT_NE(r.out.find("D1|src/gone.cc|rand()/srand(): "
                         "[stale-baseline] entry matches no current "
                         "finding"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("0 new finding(s), 1 baselined, "
                         "1 stale baseline entry"),
              std::string::npos)
        << r.out;

    // Without the staleness gate the same baseline passes (a superset
    // baseline is only an error under --check-baseline).
    LintRun lax = runLint(root + "--baseline " + baseline + " src");
    EXPECT_EQ(lax.exitCode, 0) << lax.out;

    // --check-baseline without --baseline is a usage error.
    LintRun usage = runLint(root + "--check-baseline src");
    EXPECT_EQ(usage.exitCode, 2) << usage.out;

    std::remove(baseline.c_str());
}

TEST(TexpimLint, CallgraphDumpIndexesGnarlyCpp)
{
    LintRun r = runLint("--repo-root " + fixture("callgraph") +
                        " --callgraph-dump src");
    EXPECT_EQ(r.exitCode, 0) << r.out;
    // Out-of-line methods attach to their class; the hierarchy is
    // indexed.
    EXPECT_NE(r.out.find("class Derived src/graph.cc:16 bases=Base"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("func Base::go"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("func Derived::go"), std::string::npos) << r.out;
    // Overloads must-not-miss: an unqualified call to an overloaded
    // free function targets every overload.
    EXPECT_NE(r.out.find("call overload line=48 -> overload, overload"),
              std::string::npos)
        << r.out;
    // Virtual dispatch: a call through a Base receiver also targets
    // every override in the derived closure...
    EXPECT_NE(r.out.find("member go line=56 -> Base::go, Derived::go"),
              std::string::npos)
        << r.out;
    // ...unless explicitly qualified, which pins the target.
    EXPECT_NE(r.out.find("qualified go line=49 -> Base::go"),
              std::string::npos)
        << r.out;
    // A lambda assigned inside a member function hangs off its host,
    // and its body is indexed like any function.
    EXPECT_NE(r.out.find("lambda -> <lambda src/graph.cc:33>"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("call overload line=33 -> overload, overload"),
              std::string::npos)
        << r.out;
    // Templates resolve by name; constructors resolve via the local
    // declaration; a receiver of a never-defined type stays external
    // (the documented std::function indirection hole likewise).
    EXPECT_NE(r.out.find("call twice line=68 -> twice"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("construct Holder line=65 -> Holder::Holder"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("call pick line=67 -> (external)"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("call hook line=36 -> (external)"),
              std::string::npos)
        << r.out;
}

TEST(TexpimLint, P1CatchesInjectedStatWriteInSample)
{
    // The acceptance case: a stat write smuggled into a phase-root
    // sample() through an intermediate call is caught with the path.
    LintRun r =
        runLint("--repo-root " + fixture("phase") + " --rules P1,A0 src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    EXPECT_NE(r.out.find("src/bad_p1.cc:18: [P1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("StatGroup::add"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("PathImpl::sample -> PathImpl::leak"),
              std::string::npos)
        << r.out;
    // A zone charge in the phase is P1 too.
    EXPECT_NE(r.out.find("src/bad_p1.cc:27: [P1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("TEXPIM_PROF_SCOPE"), std::string::npos) << r.out;
    EXPECT_EQ(countOf(r.out, "[P1]"), 2) << r.out;
    // The const stats_.size() read and the unreachable replay()'s stat
    // write are both fine.
    EXPECT_EQ(r.out.find("PathImpl::replay"), std::string::npos) << r.out;
}

TEST(TexpimLint, P2FlagsMemberAndStaticWritesHonoringExemptions)
{
    LintRun r = runLint("--repo-root " + fixture("phase") +
                        " --rules P2,A0 src/bad_p2.cc");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    EXPECT_NE(r.out.find("src/bad_p2.cc:16: [P2]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("member `total`"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("src/bad_p2.cc:17: [P2]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("mutable static `g_ticks`"), std::string::npos)
        << r.out;
    EXPECT_EQ(countOf(r.out, "[P2]"), 2) << r.out;
    // The constructor's write, the local `total2` shadow-alike, and the
    // caller-owned Scratch's writes are all exempt.
    EXPECT_EQ(r.out.find("Accum::Accum"), std::string::npos) << r.out;
    EXPECT_EQ(r.out.find("total2"), std::string::npos) << r.out;
    EXPECT_EQ(r.out.find("Scratch"), std::string::npos) << r.out;
}

TEST(TexpimLint, T1FlagsNonConstCallsOnPoolSharedReceivers)
{
    LintRun r =
        runLint("--repo-root " + fixture("phase") + " --rules T1,A0 src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // Virtual dispatch reports the base method and every override.
    EXPECT_NE(r.out.find("src/bad_t1.cc:25: [T1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("Store::mutate"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("SubStore::mutate"), std::string::npos) << r.out;
    EXPECT_EQ(countOf(r.out, "[T1]"), 2) << r.out;
    // The const peek() and the mutate() on a by-value local copy are
    // both fine.
    EXPECT_EQ(r.out.find("src/bad_t1.cc:26"), std::string::npos) << r.out;
    EXPECT_EQ(r.out.find("src/bad_t1.cc:28"), std::string::npos) << r.out;
}

TEST(TexpimLint, E1FlagsPanicAndThrowInDtorNoexceptContexts)
{
    LintRun r =
        runLint("--repo-root " + fixture("phase") + " --rules E1,A0 src");
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // TEXPIM_PANIC out-of-line but reachable from a destructor.
    EXPECT_NE(r.out.find("src/bad_e1.cc:15: [E1]"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("Guard::~Guard -> Guard::finish"),
              std::string::npos)
        << r.out;
    // A literal throw inside a noexcept function.
    EXPECT_NE(r.out.find("src/bad_e1.cc:21: [E1]"), std::string::npos)
        << r.out;
    EXPECT_EQ(countOf(r.out, "[E1]"), 2) << r.out;
    // The same macro on an ordinary failure path stays quiet.
    EXPECT_EQ(r.out.find("plainPanic"), std::string::npos) << r.out;
}

TEST(TexpimLint, CleanScanExitsZero)
{
    LintRun r = runLint("--repo-root " + fixture("d3") +
                        " --rules D3 src/clean_d3.cc");
    EXPECT_EQ(r.exitCode, 0) << r.out;
    EXPECT_NE(r.out.find("0 new finding(s)"), std::string::npos) << r.out;
}

TEST(TexpimLint, UnknownFlagIsAUsageError)
{
    LintRun r = runLint("--no-such-flag");
    EXPECT_EQ(r.exitCode, 2) << r.out;
}

} // namespace
