// Fixture zone table for rule S2. kZoneBare (line 7) has an empty
// description and must be flagged; kZoneGood is fine.
// texpim-lint: zone-table begin
#define FIXTURE_ZONE_TABLE(Z)                                       \
    Z(kZoneGood, "good", kZoneNone,                                 \
      "a registered, described zone")                               \
    Z(kZoneBare, "bare", kZoneNone, "")
// texpim-lint: zone-table end
