// Rule S2 violations: zone arguments that are not registered
// constants. Line numbers are asserted by test_lint.cc.
void
chargeZones()
{
    TEXPIM_PROF_CYCLES(kZoneRogue, 42);
    TEXPIM_PROF_COUNT("frame/adhoc", 1);
}
