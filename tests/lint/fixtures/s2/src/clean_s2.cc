// Registered constants under any qualification are fine; the macro
// definition lines themselves (preprocessor) are never use sites.
#define TEXPIM_PROF_CYCLES(zone, cycles) ((void)(zone), (void)(cycles))
void
chargeZones()
{
    TEXPIM_PROF_CYCLES(kZoneGood, 1);
    TEXPIM_PROF_CYCLES(prof::kZoneGood, 2);
    TEXPIM_PROF_CYCLES(::texpim::prof::kZoneGood, 3);
}
