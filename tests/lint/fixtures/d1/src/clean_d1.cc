// D1 fixture: lookalikes that must NOT fire, plus a justified allow.
#include <ctime>

struct Timer { long time(long) { return 0; } };

long use(Timer &t) {
    long v = t.time(0);
    int operand = 1;
    (void)operand;
    const char *s = "rand() and getenv() only appear in this string";
    (void)s;
    return v;
}

// rand() in a comment must not fire either.
// texpim-lint: allow(D1) fixture exercising annotation suppression
long suppressed() { return std::time(nullptr); }
