// D1 fixture: three seeded nondeterminism sources (lines 5, 7, 10).
#include <cstdlib>
#include <chrono>

int noise() { return rand(); }
double wall() {
    return std::chrono::system_clock::now()
        .time_since_epoch().count();
}
const char *env() { return std::getenv("HOME"); }
