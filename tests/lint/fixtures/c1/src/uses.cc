struct Cfg { int getInt(const char *key, int def) const; };

int readKeys(const Cfg &cfg)
{
    int a = cfg.getInt("used_key", 1);
    int b = cfg.getInt("unlisted_key", 2);
    int c = cfg.getInt("undocumented_key", 3);
    return a + b + c;
}
