struct Cfg { int getInt(const char *key, int def) const; };

int readKeys(const Cfg &cfg)
{
    int a = cfg.getInt("used_key", 1);
    int b = cfg.getInt("unlisted_key", 2);
    int c = cfg.getInt("undocumented_key", 3);
    return a + b + c;
}

struct Stats { int &counter(const char *name); };

int touchMore(const Cfg &cfg, Stats &stats)
{
    stats.counter("frames");
    return cfg.getInt("sim.depth", 4);
}
