// Fixture known-key table.
// texpim-lint: config-key-table begin
static const char *keys[] = {
    "used_key",
    "dead_key",
    "undocumented_key",
    "sim.depth",
};
// texpim-lint: config-key-table end
