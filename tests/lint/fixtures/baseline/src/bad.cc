#include <cstdlib>

int baselined() { return rand(); }
