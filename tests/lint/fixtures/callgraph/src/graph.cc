// Gnarly-C++ fixture for the call-graph indexer: overloads, a class
// hierarchy with out-of-line virtual methods, a template function, a
// lambda assigned to a std::function member, and receivers the indexer
// cannot type. The test asserts --callgraph-dump output.
#include <functional>

void overload(int v) { (void)v; }
void overload(double v) { (void)v; }

struct Base
{
    virtual void go();
    void helper() const {}
};

struct Derived : Base
{
    void go() override;
};

template <typename T>
T
twice(T v)
{
    return v + v;
}

struct Holder
{
    std::function<void()> hook;
    Holder()
    {
        hook = [this] { overload(1); };
    }
    void fire();
    void invoke() { hook(); }
};

void
Base::go()
{
    helper();
}

void
Derived::go()
{
    overload(2.5);
    Base::go(); // explicit qualification suppresses derived dispatch
}

void
Holder::fire()
{
    Base b;
    b.go();
}

struct Unknowable; // declared, never defined: receivers stay external
Unknowable &pick(int k);

int
entry(int k)
{
    Holder h;
    h.fire();
    pick(k);
    return twice(3);
}
