#include <unordered_map>
#include <vector>

int sumClean()
{
    std::unordered_map<int, int> counts;
    int s = 0;
    // texpim-lint: allow(D2) order-invariant sum, addition commutes
    for (auto it = counts.begin(); it != counts.end(); ++it)
        s += it->second;
    std::vector<int> ordered{4, 5, 6};
    for (int v : ordered)
        s += v;
    return s;
}
