#include <unordered_map>

int sumTable()
{
    std::unordered_map<int, int> table;
    int s = 0;
    for (const auto &kv : table)
        s += kv.second;
    return s;
}
