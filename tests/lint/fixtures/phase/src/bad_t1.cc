// T1 fixture: non-const calls on a pool-shared receiver from the
// phase, with the const-method, by-value-local and hierarchy cases.
// texpim-lint: pool-shared fixture store read by every phase worker
struct Store
{
    int gen = 0;
    virtual void mutate() { gen = 1; }
    int peek() const { return gen; }
};

struct SubStore : Store // inherits the pool-shared mark
{
    void mutate() override { gen = 2; }
};

struct WorkCtx
{
    Store *store;
};

// texpim-lint: phase-root fixture worker entry for the T1 cases
void
workerT1(WorkCtx &ctx)
{
    ctx.store->mutate();   // T1: non-const on pool-shared receiver
    (void)ctx.store->peek(); // quiet: const
    SubStore local;
    local.mutate(); // quiet: by-value local is a private copy
}
