// P1 fixture: the required e2e case — a deliberately injected stat
// write inside a phase-root sample() must be caught, through an
// intermediate call, while const stat reads stay quiet.
struct StatGroup
{
    double sum = 0.0;
    void add(double v) { sum += v; }
    unsigned size() const { return 1; }
};

struct PathImpl
{
    StatGroup stats_;

    void
    leak()
    {
        stats_.add(1.0); // the injected stat write
    }

    // texpim-lint: phase-root fixture functional phase-1 entry point
    void
    sample()
    {
        (void)stats_.size(); // const read: quiet
        leak();              // P1 via the call graph
        TEXPIM_PROF_SCOPE(kZoneFixture); // P1: zone charge in phase
    }

    // not reachable from any root: mutating stats here is fine
    void
    replay()
    {
        stats_.add(2.0);
    }
};
