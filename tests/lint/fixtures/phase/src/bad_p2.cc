// P2 fixture: member and mutable-static writes reachable from a phase
// root, with the caller-owned and constructor exemptions.
static int g_ticks = 0;

struct Accum
{
    int total = 0;

    Accum() { total = 1; } // constructors initialize a fresh object

    // texpim-lint: phase-root fixture phase entry that writes a member
    void
    bump(int shadowed)
    {
        int total2 = shadowed;
        total += total2; // P2: member write in the phase
        ++g_ticks;       // P2: mutable static write in the phase
    }
};

// texpim-lint: caller-owned fixture scratch each worker constructs
struct Scratch
{
    int n = 0;

    // texpim-lint: phase-root fixture phase entry on caller-owned type
    void
    reset()
    {
        n = 0; // quiet: the owning worker mutates its own scratch
    }
};
