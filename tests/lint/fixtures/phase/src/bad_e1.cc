// E1 fixture: TEXPIM_PANIC and throw reachable from destructor /
// noexcept contexts; the same constructs elsewhere stay quiet.
bool failed();

struct Guard
{
    ~Guard() { finish(); }
    void finish();
};

void
Guard::finish()
{
    if (failed())
        TEXPIM_PANIC("fixture: panic reachable from a destructor");
}

void
risky() noexcept
{
    throw 1; // E1: throw in a noexcept context
}

void
plainPanic()
{
    // quiet: not reachable from any destructor or noexcept function
    TEXPIM_PANIC("fixture: ordinary failure path");
}
