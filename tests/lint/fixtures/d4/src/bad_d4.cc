int nextId()
{
    static int counter = 0;
    return ++counter;
}
