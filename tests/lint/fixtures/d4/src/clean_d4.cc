#include <cstddef>

int cleanNextId()
{
    static const int base = 40;
    static constexpr std::size_t kWidth = 8;
    static thread_local int scratch = 0;
    static_assert(sizeof(int) >= 4, "int width");
    ++scratch;
    return base + int(kWidth) + scratch;
}

static int helper();
static int helper() { return 1; }
