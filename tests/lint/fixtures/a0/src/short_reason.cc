#include <ctime>

// texpim-lint: allow(D1) why
long shortReason() { return std::time(nullptr); }
