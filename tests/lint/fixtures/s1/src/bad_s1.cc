struct StatGroup; // fixture: textual scan only, never compiled

void registerStats(StatGroup &g);

void wireStats(StatGroup &g)
{
    g.counter("described", "a properly documented event count");
    g.counter("undescribed");
    g.histogram("undescribed_hist", 0, 10, 4);
}
