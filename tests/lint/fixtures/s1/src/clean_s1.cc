struct StatGroup; // fixture: textual scan only, never compiled

void wireCleanStats(StatGroup &g)
{
    g.counter("events", "number of events observed");
    g.average("latency", "mean event latency in cycles");
    g.histogram("sizes", 0, 128, 8, "event size distribution");
    g.counter("events") += 1;
    g.counter(dynamicName() ? "reads" : "writes") += 1;
}
