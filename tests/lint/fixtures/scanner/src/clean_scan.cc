// Scanner blind spots: every D1 trigger below hides inside a raw
// string, a backslash-spliced line comment or an #if 0 block, so
// nothing in this file may fire.
#include <cstdlib>
const char *raw = R"(rand() and getenv("HOME") inside a raw string)";
const char *rawDelim = R"x(rand() with an embedded )" quote)x";
// a spliced line comment hides the next physical line too \
int hidden_by_splice() { return rand(); }
#if 0
int dead_simple() { return rand(); }
#if 1
int dead_nested() { return rand(); }
#endif
int dead_tail() { return rand(); }
#endif
#if false
int dead_false() { return rand(); }
#endif
int alive() { return 7; }
