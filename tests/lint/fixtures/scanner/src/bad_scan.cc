// Violations adjacent to the blind-spot constructs must still fire:
// the scanner may not over-blank its way past real code.
#include <cstdlib>
int after_raw() { return (void)R"(decoy)", rand(); }
#if 0
int dead() { return rand(); }
#else
int live_else_branch() { return rand(); }
#endif
// an ordinary comment ends at the newline . . . no splice here.
int after_comment() { return rand(); }
