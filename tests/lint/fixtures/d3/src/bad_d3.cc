#include <algorithm>
#include <vector>

void orderFixture(std::vector<int> &v)
{
    std::sort(v.begin(), v.end());
}
