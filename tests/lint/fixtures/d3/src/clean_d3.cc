#include <algorithm>
#include <vector>

void orderStable(std::vector<int> &v)
{
    std::stable_sort(v.begin(), v.end());
    // tie-break: int values are their own total order; duplicates are
    // interchangeable.
    std::sort(v.begin(), v.end());
}
