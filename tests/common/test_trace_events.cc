#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>

#include "common/stat_export.hh"
#include "common/stat_registry.hh"
#include "common/trace_events.hh"

namespace texpim {
namespace {

/** The tracer is a process-wide singleton; make each test leave it
 *  idle so tests stay order-independent. */
class TraceEventsTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        if (TraceEvents::active())
            TraceEvents::instance().disable();
    }
};

TEST_F(TraceEventsTest, InactiveByDefaultAndMacrosAreNoOps)
{
    EXPECT_FALSE(TraceEvents::active());
    // With the tracer inactive these must not record anything.
    TEXPIM_TRACE_SPAN("cat", "s", 0, 0, 10);
    TEXPIM_TRACE_COMPLETE("cat", "x", 0, 0, 5);
    TraceEvents::instance().enable("", 100);
    EXPECT_EQ(TraceEvents::instance().recorded(), 0u);
}

TEST_F(TraceEventsTest, MacrosForwardOnlyWhenCompiledInAndActive)
{
    TraceEvents &t = TraceEvents::instance();
    t.enable("", 100);
    TEXPIM_TRACE_INSTANT("cat", "hit", 0, 1);
#if TEXPIM_TRACING
    EXPECT_EQ(t.recorded(), 1u);
#else
    EXPECT_EQ(t.recorded(), 0u); // compiled out entirely
#endif
    t.disable();
}

TEST_F(TraceEventsTest, RecordsEveryEventKind)
{
    TraceEvents &t = TraceEvents::instance();
    t.enable("", 100);
    EXPECT_TRUE(TraceEvents::active());

    t.span("raster", "tile", 3, 100, 250);
    t.complete("texture", "req", 7, 120, 40);
    t.instant("dram", "miss", 2, 130);
    t.counter("frame", "frags", 140, 9.5);
    EXPECT_EQ(t.recorded(), 5u); // span counts as B + E

    json::Value doc = json::parse(t.toJson());
    const json::Value &evs = doc.at("traceEvents");
    ASSERT_EQ(evs.array.size(), 5u);

    const json::Value &b = evs.array[0];
    EXPECT_EQ(b.at("ph").string, "B");
    EXPECT_EQ(b.at("cat").string, "raster");
    EXPECT_EQ(b.at("name").string, "tile");
    EXPECT_DOUBLE_EQ(b.at("tid").number, 3.0);
    EXPECT_DOUBLE_EQ(b.at("ts").number, 100.0);

    const json::Value &e = evs.array[1];
    EXPECT_EQ(e.at("ph").string, "E");
    EXPECT_DOUBLE_EQ(e.at("ts").number, 250.0);

    const json::Value &x = evs.array[2];
    EXPECT_EQ(x.at("ph").string, "X");
    EXPECT_DOUBLE_EQ(x.at("dur").number, 40.0);

    const json::Value &i = evs.array[3];
    EXPECT_EQ(i.at("ph").string, "i");
    EXPECT_EQ(i.at("s").string, "t");

    const json::Value &c = evs.array[4];
    EXPECT_EQ(c.at("ph").string, "C");
    EXPECT_DOUBLE_EQ(c.at("args").at("value").number, 9.5);

    EXPECT_EQ(doc.at("otherData").at("clock").string, "gpu-core-cycles");
}

TEST_F(TraceEventsTest, CapDropsWholeSpansKeepingBalance)
{
    TraceEvents &t = TraceEvents::instance();
    t.enable("", 3); // room for one span (2 events) + one single
    t.span("c", "s1", 0, 0, 1);
    t.span("c", "s2", 0, 2, 3); // needs 2, only 1 slot left: dropped
    t.instant("c", "i", 0, 4);  // single event still fits
    t.instant("c", "i2", 0, 5); // now full: dropped
    EXPECT_EQ(t.recorded(), 3u);
    EXPECT_EQ(t.dropped(), 3u); // 2 (span) + 1 (instant)

    unsigned begins = 0, ends = 0;
    json::Value doc = json::parse(t.toJson());
    for (const json::Value &e : doc.at("traceEvents").array) {
        if (e.at("ph").string == "B")
            ++begins;
        if (e.at("ph").string == "E")
            ++ends;
    }
    EXPECT_EQ(begins, 1u);
    EXPECT_EQ(begins, ends);
    EXPECT_DOUBLE_EQ(doc.at("otherData").at("dropped_events").number, 3.0);
}

TEST_F(TraceEventsTest, DisableWritesTheFileAndStopsRecording)
{
    std::string path = ::testing::TempDir() + "/texpim_trace_test.json";
    TraceEvents &t = TraceEvents::instance();
    t.enable(path, 100);
    t.complete("cat", "work", 1, 10, 5);
    t.disable();
    EXPECT_FALSE(TraceEvents::active());

    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    json::Value doc = json::parse(text);
    ASSERT_EQ(doc.at("traceEvents").array.size(), 1u);
    EXPECT_EQ(doc.at("traceEvents").array[0].at("name").string, "work");
    std::remove(path.c_str());

    // Macros are dead again after disable().
    TEXPIM_TRACE_INSTANT("cat", "late", 0, 99);
    t.enable("", 100);
    EXPECT_EQ(t.recorded(), 0u);
}

TEST_F(TraceEventsTest, ReenableResetsBufferAndDropCount)
{
    TraceEvents &t = TraceEvents::instance();
    t.enable("", 1);
    t.instant("c", "a", 0, 0);
    t.instant("c", "b", 0, 1); // dropped
    EXPECT_EQ(t.dropped(), 1u);
    t.disable();

    t.enable("", 10);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST_F(TraceEventsTest, DisableFoldsDropCountIntoTheStatRegistry)
{
    TraceEvents &t = TraceEvents::instance();
    t.enable("", 1);
    StatRegistry::Snapshot before = StatRegistry::instance().snapshot();
    t.instant("c", "a", 0, 0);
    t.instant("c", "b", 0, 1); // dropped
    t.instant("c", "c", 0, 2); // dropped
    t.disable();

    // The drop total survives the tracer's death as a registry
    // counter, so stats exports show the truncation.
    StatRegistry::Snapshot d = StatRegistry::instance().delta(before);
    double folded = 0.0;
    for (const auto &[key, v] : d)
        if (key.find("dropped_events") != std::string::npos)
            folded += v;
    EXPECT_DOUBLE_EQ(folded, 2.0);
}

TEST_F(TraceEventsTest, TruncationAppendsAGlobalInstantMarker)
{
    TraceEvents &t = TraceEvents::instance();
    t.enable("", 2);
    t.instant("c", "a", 0, 10);
    t.instant("c", "b", 0, 20);
    t.instant("c", "late", 0, 30); // dropped

    json::Value doc = json::parse(t.toJson());
    const auto &evs = doc.at("traceEvents").array;
    ASSERT_EQ(evs.size(), 3u); // 2 recorded + the marker
    const json::Value &m = evs.back();
    EXPECT_EQ(m.at("ph").string, "i");
    EXPECT_EQ(m.at("name").string, "event_cap_truncated");
    EXPECT_EQ(m.at("s").string, "g"); // global-scoped: always visible
    // Anchored at the last recorded event so it lands in view.
    EXPECT_DOUBLE_EQ(m.at("ts").number, 20.0);
    EXPECT_DOUBLE_EQ(m.at("args").at("dropped_events").number, 1.0);
}

TEST_F(TraceEventsTest, FlowAndNamedCounterEventShapes)
{
    TraceEvents &t = TraceEvents::instance();
    t.enable("", 100);
    t.flowBegin("phase", "tile", 1, 10, 42);
    t.flowEnd("phase", "tile", 2, 50, 42);
    t.counterNamed("util", "vault3.bytes", 64, 4096.0);

    json::Value doc = json::parse(t.toJson());
    const auto &evs = doc.at("traceEvents").array;
    ASSERT_EQ(evs.size(), 3u);
    // Flow start/finish pair sharing the id that links them.
    EXPECT_EQ(evs[0].at("ph").string, "s");
    EXPECT_DOUBLE_EQ(evs[0].at("id").number, 42.0);
    EXPECT_EQ(evs[1].at("ph").string, "f");
    EXPECT_DOUBLE_EQ(evs[1].at("id").number, 42.0);
    EXPECT_EQ(evs[1].at("bp").string, "e"); // bind to enclosing slice
    // Runtime-named counter sample ("C") with its interned name.
    EXPECT_EQ(evs[2].at("ph").string, "C");
    EXPECT_EQ(evs[2].at("name").string, "vault3.bytes");
    EXPECT_DOUBLE_EQ(evs[2].at("ts").number, 64.0);
    EXPECT_DOUBLE_EQ(evs[2].at("args").at("value").number, 4096.0);
}

} // namespace
} // namespace texpim
