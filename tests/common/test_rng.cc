#include <gtest/gtest.h>

#include "common/rng.hh"

namespace texpim {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool diverged = false;
    for (int i = 0; i < 10 && !diverged; ++i)
        diverged = a.next() != b.next();
    EXPECT_TRUE(diverged);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformMeanRoughlyHalf)
{
    Rng r(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        i64 v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ZeroSeedIsRemapped)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

} // namespace
} // namespace texpim
