#include <gtest/gtest.h>

#include <vector>

#include "common/fault.hh"

namespace texpim {
namespace {

TEST(FaultParams, FromConfigReadsKeys)
{
    Config cfg;
    cfg.setInt("fault_seed", 123);
    cfg.setDouble("fault_link_ber", 0.25);
    cfg.setDouble("fault_vault_ber", 0.125);
    cfg.setInt("fault_burst_len", 4);
    FaultParams p = FaultParams::fromConfig(cfg);
    EXPECT_EQ(p.seed, 123u);
    EXPECT_DOUBLE_EQ(p.linkBer, 0.25);
    EXPECT_DOUBLE_EQ(p.vaultBer, 0.125);
    EXPECT_EQ(p.burstLen, 4u);
    EXPECT_TRUE(p.enabled());
}

TEST(FaultParams, DefaultsAreDisabled)
{
    Config cfg;
    FaultParams p = FaultParams::fromConfig(cfg);
    EXPECT_FALSE(p.enabled());
    EXPECT_DOUBLE_EQ(p.linkBer, 0.0);
    EXPECT_DOUBLE_EQ(p.vaultBer, 0.0);
}

TEST(FaultParamsDeath, BerOutOfRangeIsFatal)
{
    Config cfg;
    cfg.setDouble("fault_link_ber", 1.5);
    EXPECT_EXIT({ (void)FaultParams::fromConfig(cfg); },
                testing::ExitedWithCode(1), "fault_link_ber");
}

TEST(Fault, DisabledNeverFiresAndNeverCounts)
{
    FaultInjector f;
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(f.fire());
    EXPECT_FALSE(f.enabled());
    EXPECT_EQ(f.trials(), 0u);
    EXPECT_EQ(f.faults(), 0u);
}

TEST(Fault, AlwaysFiresAtProbabilityOne)
{
    FaultInjector f("test.p1", 1.0, 1, 42);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(f.fire());
    EXPECT_EQ(f.trials(), 100u);
    EXPECT_EQ(f.faults(), 100u);
}

TEST(Fault, SameSeedSameSiteIsDeterministic)
{
    FaultInjector a("test.det", 0.3, 1, 7);
    FaultInjector b("test.det", 0.3, 1, 7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(a.fire(), b.fire()) << "trial " << i;
}

TEST(Fault, DifferentSeedsDiverge)
{
    FaultInjector a("test.div", 0.3, 1, 7);
    FaultInjector b("test.div", 0.3, 1, 8);
    unsigned diffs = 0;
    for (int i = 0; i < 10000; ++i)
        diffs += a.fire() != b.fire();
    EXPECT_GT(diffs, 0u);
}

TEST(Fault, DifferentSitesGetIndependentStreams)
{
    EXPECT_NE(faultSiteSeed(7, "hmc0.link_tx"),
              faultSiteSeed(7, "hmc0.link_rx"));
    FaultInjector a("site.a", 0.3, 1, 7);
    FaultInjector b("site.b", 0.3, 1, 7);
    unsigned diffs = 0;
    for (int i = 0; i < 10000; ++i)
        diffs += a.fire() != b.fire();
    EXPECT_GT(diffs, 0u);
}

TEST(Fault, ObservedRateTracksProbability)
{
    FaultInjector f("test.rate", 0.1, 1, 99);
    for (int i = 0; i < 100000; ++i)
        f.fire();
    double rate = double(f.faults()) / double(f.trials());
    EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(Fault, BurstExtendsFaults)
{
    // With burst_len = 4, every fault run must be a multiple-of-4
    // length (a fresh fire during a burst tail cannot happen because
    // burst trials skip the RNG), and the overall fault rate must be
    // roughly 4x the trigger probability.
    FaultInjector f("test.burst", 0.02, 4, 5);
    std::vector<unsigned> runs;
    unsigned run = 0;
    for (int i = 0; i < 100000; ++i) {
        if (f.fire()) {
            ++run;
        } else if (run > 0) {
            runs.push_back(run);
            run = 0;
        }
    }
    ASSERT_FALSE(runs.empty());
    for (unsigned r : runs)
        EXPECT_EQ(r % 4, 0u);
    double rate = double(f.faults()) / double(f.trials());
    EXPECT_NEAR(rate, 0.08, 0.02);
}

TEST(Fault, RegistryTracksEnabledSites)
{
    size_t before = FaultRegistry::instance().size();
    {
        FaultInjector on("reg.on", 0.5, 1, 1);
        FaultInjector off; // disabled: must not register
        EXPECT_EQ(FaultRegistry::instance().size(), before + 1);

        // The registry entry follows the object across moves.
        FaultInjector moved(std::move(on));
        EXPECT_EQ(FaultRegistry::instance().size(), before + 1);
        auto sites = FaultRegistry::instance().sites();
        bool found = false;
        for (const FaultInjector *s : sites)
            found |= s == &moved;
        EXPECT_TRUE(found);
    }
    EXPECT_EQ(FaultRegistry::instance().size(), before);
}

TEST(Fault, RegistryTotalsFaults)
{
    size_t base = FaultRegistry::instance().totalFaults();
    FaultInjector f("reg.total", 1.0, 1, 1);
    f.fire();
    f.fire();
    EXPECT_EQ(FaultRegistry::instance().totalFaults(), base + 2);
    f.resetStats();
    EXPECT_EQ(FaultRegistry::instance().totalFaults(), base);
}

} // namespace
} // namespace texpim
