#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "common/sim_context.hh"

namespace texpim {
namespace {

TEST(Logging, WarnIncrementsCounter)
{
    setLogQuiet(true);
    unsigned long before = warnCount();
    TEXPIM_WARN("test warning ", 42);
    EXPECT_EQ(warnCount(), before + 1);
    setLogQuiet(false);
}

TEST(Logging, ConcatFormatsMixedArguments)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ TEXPIM_PANIC("boom ", 1); }, "panic: boom 1");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT({ TEXPIM_FATAL("bad config"); },
                testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(LoggingDeath, AssertFiresOnFalse)
{
    EXPECT_DEATH({ TEXPIM_ASSERT(1 == 2, "math broke"); },
                 "assertion '1 == 2' failed: math broke");
}

TEST(Logging, AssertPassesOnTrue)
{
    TEXPIM_ASSERT(2 + 2 == 4, "never shown");
    SUCCEED();
}

// --- panic containment (ScopedPanicHandler / SimPanic) --------------

TEST(PanicHandler, PanicThrowsSimPanicWhileHandlerInstalled)
{
    ScopedPanicHandler contain;
    try {
        TEXPIM_PANIC("contained ", 7);
        FAIL() << "panic did not throw";
    } catch (const SimPanic &e) {
        EXPECT_EQ(e.message(), "contained 7");
        EXPECT_NE(e.site().find("test_logging.cc:"), std::string::npos)
            << e.site();
        EXPECT_NE(std::string(e.what()).find("panic: contained 7"),
                  std::string::npos);
    }
}

TEST(PanicHandler, AssertThrowsThroughHandlerToo)
{
    ScopedPanicHandler contain;
    EXPECT_THROW(TEXPIM_ASSERT(1 == 2, "math broke"), SimPanic);
}

TEST(PanicHandler, HandlersNest)
{
    ScopedPanicHandler outer;
    {
        ScopedPanicHandler inner;
        EXPECT_TRUE(ScopedPanicHandler::installed());
    }
    // The outer handler still contains after the inner one died.
    EXPECT_TRUE(ScopedPanicHandler::installed());
    EXPECT_THROW(TEXPIM_PANIC("still contained"), SimPanic);
}

TEST(PanicHandler, HandlerIsThreadLocal)
{
    ScopedPanicHandler contain;
    EXPECT_TRUE(ScopedPanicHandler::installed());
    bool installed_on_other_thread = true;
    std::thread t([&] {
        installed_on_other_thread = ScopedPanicHandler::installed();
    });
    t.join();
    EXPECT_FALSE(installed_on_other_thread)
        << "containment must not leak across threads";
}

TEST(PanicHandlerDeath, PanicAbortsAgainAfterHandlerDestroyed)
{
    { ScopedPanicHandler contain; }
    EXPECT_FALSE(ScopedPanicHandler::installed());
    EXPECT_DEATH({ TEXPIM_PANIC("boom again"); }, "panic: boom again");
}

TEST(PanicHandlerDeath, UncontainedPanicFlushesEnabledTrace)
{
    // A panic with no handler installed must write the panicking
    // thread's SimContext trace buffer to disk before aborting, so a
    // crashed worker keeps its observability artifacts. The death
    // statement runs in the forked child; the file it writes is
    // visible to us afterwards.
    std::string path = testing::TempDir() + "texpim_panic_flush.json";
    std::remove(path.c_str());
    EXPECT_DEATH(
        {
            SimContext ctx;
            SimContext::Scope scope(ctx);
            ctx.trace().enable(path, 64);
            TEXPIM_PANIC("flush me");
        },
        "flushed trace to");
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "panic did not write " << path;
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_NE(text.str().find("traceEvents"), std::string::npos)
        << "flushed trace is not a trace-event file";
    std::remove(path.c_str());
}

} // namespace
} // namespace texpim
