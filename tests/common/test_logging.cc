#include <gtest/gtest.h>

#include "common/logging.hh"

namespace texpim {
namespace {

TEST(Logging, WarnIncrementsCounter)
{
    setLogQuiet(true);
    unsigned long before = warnCount();
    TEXPIM_WARN("test warning ", 42);
    EXPECT_EQ(warnCount(), before + 1);
    setLogQuiet(false);
}

TEST(Logging, ConcatFormatsMixedArguments)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ TEXPIM_PANIC("boom ", 1); }, "panic: boom 1");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT({ TEXPIM_FATAL("bad config"); },
                testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(LoggingDeath, AssertFiresOnFalse)
{
    EXPECT_DEATH({ TEXPIM_ASSERT(1 == 2, "math broke"); },
                 "assertion '1 == 2' failed: math broke");
}

TEST(Logging, AssertPassesOnTrue)
{
    TEXPIM_ASSERT(2 + 2 == 4, "never shown");
    SUCCEED();
}

} // namespace
} // namespace texpim
