#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/stat_export.hh"

namespace texpim {
namespace {

/** Find a group object by name in a parsed texpim-stats-v1 document. */
const json::Value *
findGroup(const json::Value &doc, const std::string &name)
{
    for (const json::Value &g : doc.at("groups").array)
        if (g.at("name").string == name)
            return &g;
    return nullptr;
}

const json::Value *
findNamed(const json::Value &arr, const std::string &name)
{
    for (const json::Value &v : arr.array)
        if (v.at("name").string == name)
            return &v;
    return nullptr;
}

TEST(JsonWriter, ComposesNestedStructures)
{
    JsonWriter w;
    w.beginObject();
    w.keyValue("a", 1);
    w.key("b").beginArray().value(2.5).value("x").value(true).endArray();
    w.key("c").beginObject().keyValue("d", u64(7)).endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[2.5,\"x\",true],\"c\":{\"d\":7}}");
}

TEST(JsonWriter, EscapesSpecials)
{
    JsonWriter w;
    w.value(std::string("q\"b\\s\nnl\tt") + '\x01');
    EXPECT_EQ(w.str(), "\"q\\\"b\\\\s\\nnl\\tt\\u0001\"");
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.keyValue("num", 3.25);
    w.keyValue("neg", i64(-4));
    w.keyValue("str", "he\"llo\n");
    w.keyValue("flag", false);
    w.key("arr").beginArray().value(1).value(2).endArray();
    w.endObject();

    json::Value v = json::parse(w.str());
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.at("num").number, 3.25);
    EXPECT_DOUBLE_EQ(v.at("neg").number, -4.0);
    EXPECT_EQ(v.at("str").string, "he\"llo\n");
    EXPECT_FALSE(v.at("flag").boolean);
    ASSERT_EQ(v.at("arr").array.size(), 2u);
    EXPECT_DOUBLE_EQ(v.at("arr").array[1].number, 2.0);
    EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(JsonParseDeath, MalformedInputPanics)
{
    EXPECT_DEATH({ (void)json::parse("{\"a\":}"); }, "");
    EXPECT_DEATH({ (void)json::parse("[1, 2"); }, "");
    EXPECT_DEATH({ (void)json::parse("{} trailing"); }, "trailing");
}

TEST(StatExport, JsonRoundTripCoversEveryStatKind)
{
    StatGroup g("export_grp");
    g.counter("hits", "cache hits") += 41;
    g.average("lat", "latency").sample(10.0);
    g.average("lat").sample(20.0);
    StatHistogram &h = g.histogram("dist", 0.0, 10.0, 5, "a distribution");
    h.sample(1.0);
    h.sample(3.0);
    h.sample(9.0);

    json::Value doc = json::parse(statsToJson());
    EXPECT_EQ(doc.at("schema").string, "texpim-stats-v1");
    const json::Value *grp = findGroup(doc, "export_grp");
    ASSERT_NE(grp, nullptr);

    const json::Value *c = findNamed(grp->at("counters"), "hits");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->at("value").number, 41.0);
    EXPECT_EQ(c->at("desc").string, "cache hits");

    const json::Value *a = findNamed(grp->at("averages"), "lat");
    ASSERT_NE(a, nullptr);
    EXPECT_DOUBLE_EQ(a->at("mean").number, 15.0);
    EXPECT_DOUBLE_EQ(a->at("count").number, 2.0);
    EXPECT_DOUBLE_EQ(a->at("sum").number, 30.0);

    const json::Value *hist = findNamed(grp->at("histograms"), "dist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->at("lo").number, 0.0);
    EXPECT_DOUBLE_EQ(hist->at("hi").number, 10.0);
    EXPECT_DOUBLE_EQ(hist->at("samples").number, 3.0);
    EXPECT_DOUBLE_EQ(hist->at("min").number, 1.0);
    EXPECT_DOUBLE_EQ(hist->at("max").number, 9.0);
    const json::Value &buckets = hist->at("buckets");
    ASSERT_EQ(buckets.array.size(), 5u);
    EXPECT_DOUBLE_EQ(buckets.array[0].number, 1.0); // 1.0
    EXPECT_DOUBLE_EQ(buckets.array[1].number, 1.0); // 3.0
    EXPECT_DOUBLE_EQ(buckets.array[4].number, 1.0); // 9.0
    // Percentiles are exported and match the histogram's own numbers.
    EXPECT_DOUBLE_EQ(hist->at("p50").number, h.percentile(0.50));
    EXPECT_DOUBLE_EQ(hist->at("p95").number, h.percentile(0.95));
    EXPECT_DOUBLE_EQ(hist->at("p99").number, h.percentile(0.99));
}

TEST(StatExport, JsonOmitsDescWhenUnset)
{
    StatGroup g("export_nodesc");
    g.counter("c") += 1;
    json::Value doc = json::parse(statsToJson());
    const json::Value *grp = findGroup(doc, "export_nodesc");
    ASSERT_NE(grp, nullptr);
    const json::Value *c = findNamed(grp->at("counters"), "c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->find("desc"), nullptr);
}

TEST(StatExport, CsvHasHeaderAndRowPerStat)
{
    StatGroup g("export_csv");
    g.counter("n, quoted", "uses \"quotes\"") += 3;
    g.average("avg").sample(4.0);
    g.histogram("h", 0.0, 4.0, 2).sample(1.0);

    std::string csv = statsToCsv();
    std::istringstream is(csv);
    std::string header;
    std::getline(is, header);
    EXPECT_EQ(header,
              "group,stat,kind,value,count,mean,min,max,p50,p95,p99,"
              "buckets,description");

    bool saw_counter = false, saw_avg = false, saw_hist = false;
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("export_csv,", 0) != 0)
            continue;
        if (line.find("\"n, quoted\",counter,3") != std::string::npos &&
            line.find("\"uses \"\"quotes\"\"\"") != std::string::npos)
            saw_counter = true;
        if (line.find("avg,average,4,1,4") != std::string::npos)
            saw_avg = true;
        if (line.find("h,histogram,1,1,1,1,1") != std::string::npos &&
            line.find(",1;0,") != std::string::npos)
            saw_hist = true;
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_avg);
    EXPECT_TRUE(saw_hist);
}

TEST(StatExport, WriteStatsFilePicksFormatByExtension)
{
    StatGroup g("export_file");
    g.counter("c") += 9;

    std::string jpath = ::testing::TempDir() + "/texpim_stats_test.json";
    std::string cpath = ::testing::TempDir() + "/texpim_stats_test.csv";
    writeStatsFile(jpath);
    writeStatsFile(cpath);

    std::ifstream jf(jpath);
    std::string jtext((std::istreambuf_iterator<char>(jf)),
                      std::istreambuf_iterator<char>());
    json::Value doc = json::parse(jtext);
    EXPECT_NE(findGroup(doc, "export_file"), nullptr);

    std::ifstream cf(cpath);
    std::string first;
    std::getline(cf, first);
    EXPECT_EQ(first.rfind("group,stat,", 0), 0u);
    std::remove(jpath.c_str());
    std::remove(cpath.c_str());
}

} // namespace
} // namespace texpim
