/**
 * @file
 * The watchdog Deadline: zero-overhead when unarmed, cooperative
 * SimTimeout cancellation when armed and expired, and clean re-arm /
 * disarm transitions (the runner arms it once per attempt).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/deadline.hh"
#include "common/sim_context.hh"

namespace texpim {
namespace {

TEST(Deadline, UnarmedCheckIsANoop)
{
    Deadline d;
    EXPECT_FALSE(d.armed());
    EXPECT_FALSE(d.expired());
    d.check("nowhere"); // must not throw
    SUCCEED();
}

TEST(Deadline, ArmedButNotExpiredDoesNotThrow)
{
    Deadline d;
    d.arm(60000);
    EXPECT_TRUE(d.armed());
    EXPECT_FALSE(d.expired());
    d.check("renderer.tile");
    d.disarm();
    EXPECT_FALSE(d.armed());
}

TEST(Deadline, ExpiryThrowsSimTimeoutWithSiteAndBudget)
{
    Deadline d;
    d.arm(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(d.expired());
    try {
        d.check("renderer.frame");
        FAIL() << "expired deadline did not throw";
    } catch (const SimTimeout &e) {
        EXPECT_EQ(e.site(), "renderer.frame");
        EXPECT_EQ(e.timeoutMs(), 1u);
        EXPECT_NE(std::string(e.what()).find("sim.job_timeout_ms=1"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("renderer.frame"),
                  std::string::npos);
    }
}

TEST(Deadline, DisarmSilencesAnExpiredDeadline)
{
    Deadline d;
    d.arm(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    d.disarm();
    EXPECT_FALSE(d.expired());
    d.check("after-disarm");
    SUCCEED();
}

TEST(Deadline, RearmRestartsTheBudget)
{
    Deadline d;
    d.arm(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    d.arm(60000); // the runner re-arms per retry attempt
    d.check("fresh-budget");
    EXPECT_TRUE(d.armed());
    EXPECT_EQ(d.timeoutMs(), 60000u);
}

TEST(Deadline, EverySimContextCarriesItsOwnDeadline)
{
    SimContext a, b;
    a.deadline().arm(1);
    EXPECT_TRUE(a.deadline().armed());
    EXPECT_FALSE(b.deadline().armed());
    {
        SimContext::Scope scope(a);
        EXPECT_TRUE(SimContext::current().deadline().armed());
    }
    a.deadline().disarm();
}

} // namespace
} // namespace texpim
