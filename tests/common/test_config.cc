#include <gtest/gtest.h>

#include "common/config.hh"

namespace texpim {
namespace {

TEST(Config, SetAndGetTyped)
{
    Config c;
    c.setInt("n", 42);
    c.setDouble("pi", 3.5);
    c.setBool("flag", true);
    c.set("name", "doom3");
    EXPECT_EQ(c.getInt("n"), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("pi"), 3.5);
    EXPECT_TRUE(c.getBool("flag"));
    EXPECT_EQ(c.getString("name"), "doom3");
}

TEST(Config, DefaultsWhenMissing)
{
    Config c;
    EXPECT_EQ(c.getInt("absent", 7), 7);
    EXPECT_DOUBLE_EQ(c.getDouble("absent", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("absent", false));
    EXPECT_EQ(c.getString("absent", "x"), "x");
}

TEST(Config, ParseItemTrimsWhitespace)
{
    Config c;
    c.parseItem("  key =  value with spaces  ");
    EXPECT_EQ(c.getString("key"), "value with spaces");
}

TEST(Config, ParseTextSkipsCommentsAndBlanks)
{
    Config c;
    c.parseText("# header comment\n"
                "a = 1\n"
                "\n"
                "b = 2 # trailing comment\n");
    EXPECT_EQ(c.getInt("a"), 1);
    EXPECT_EQ(c.getInt("b"), 2);
    EXPECT_EQ(c.keys().size(), 2u);
}

TEST(Config, BooleanSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
        c.set("k", t);
        EXPECT_TRUE(c.getBool("k")) << t;
    }
    for (const char *f : {"false", "0", "no", "off", "OFF"}) {
        c.set("k", f);
        EXPECT_FALSE(c.getBool("k")) << f;
    }
}

TEST(Config, MergeFromOverrides)
{
    Config a, b;
    a.setInt("x", 1);
    a.setInt("y", 2);
    b.setInt("y", 20);
    b.setInt("z", 30);
    a.mergeFrom(b);
    EXPECT_EQ(a.getInt("x"), 1);
    EXPECT_EQ(a.getInt("y"), 20);
    EXPECT_EQ(a.getInt("z"), 30);
}

TEST(Config, HexIntegers)
{
    Config c;
    c.set("addr", "0x1000");
    EXPECT_EQ(c.getInt("addr"), 0x1000);
}

TEST(ConfigDeath, MissingRequiredKeyIsFatal)
{
    Config c;
    EXPECT_EXIT({ (void)c.getInt("nope"); }, testing::ExitedWithCode(1),
                "missing required config key");
}

TEST(ConfigDeath, MalformedNumberIsFatal)
{
    Config c;
    c.set("n", "abc");
    EXPECT_EXIT({ (void)c.getInt("n"); }, testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ConfigDeath, MalformedItemIsFatal)
{
    Config c;
    EXPECT_EXIT({ c.parseItem("no-equals-sign"); },
                testing::ExitedWithCode(1), "malformed config item");
}

} // namespace
} // namespace texpim
