#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/logging.hh"

namespace texpim {
namespace {

TEST(Config, SetAndGetTyped)
{
    Config c;
    c.setInt("n", 42);
    c.setDouble("pi", 3.5);
    c.setBool("flag", true);
    c.set("name", "doom3");
    EXPECT_EQ(c.getInt("n"), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("pi"), 3.5);
    EXPECT_TRUE(c.getBool("flag"));
    EXPECT_EQ(c.getString("name"), "doom3");
}

TEST(Config, DefaultsWhenMissing)
{
    Config c;
    EXPECT_EQ(c.getInt("absent", 7), 7);
    EXPECT_DOUBLE_EQ(c.getDouble("absent", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("absent", false));
    EXPECT_EQ(c.getString("absent", "x"), "x");
}

TEST(Config, ParseItemTrimsWhitespace)
{
    Config c;
    c.parseItem("  key =  value with spaces  ");
    EXPECT_EQ(c.getString("key"), "value with spaces");
}

TEST(Config, ParseTextSkipsCommentsAndBlanks)
{
    Config c;
    c.parseText("# header comment\n"
                "a = 1\n"
                "\n"
                "b = 2 # trailing comment\n");
    EXPECT_EQ(c.getInt("a"), 1);
    EXPECT_EQ(c.getInt("b"), 2);
    EXPECT_EQ(c.keys().size(), 2u);
}

TEST(Config, BooleanSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
        c.set("k", t);
        EXPECT_TRUE(c.getBool("k")) << t;
    }
    for (const char *f : {"false", "0", "no", "off", "OFF"}) {
        c.set("k", f);
        EXPECT_FALSE(c.getBool("k")) << f;
    }
}

TEST(Config, MergeFromOverrides)
{
    Config a, b;
    a.setInt("x", 1);
    a.setInt("y", 2);
    b.setInt("y", 20);
    b.setInt("z", 30);
    a.mergeFrom(b);
    EXPECT_EQ(a.getInt("x"), 1);
    EXPECT_EQ(a.getInt("y"), 20);
    EXPECT_EQ(a.getInt("z"), 30);
}

TEST(Config, HexIntegers)
{
    Config c;
    c.set("addr", "0x1000");
    EXPECT_EQ(c.getInt("addr"), 0x1000);
}

TEST(Config, ParseItemSplitsOnFirstEqualsOnly)
{
    // Values may themselves contain '=' (e.g. output paths).
    Config c;
    c.parseItem("out=frames/a=b.ppm");
    EXPECT_EQ(c.getString("out"), "frames/a=b.ppm");
    c.parseItem("expr = x == y ");
    EXPECT_EQ(c.getString("expr"), "x == y");
}

TEST(Config, EmptyValueIsStoredAsEmptyString)
{
    // "key=" is legal (e.g. clearing an output path on the CLI); the
    // key exists with an empty value and string lookups return "".
    Config c;
    c.parseItem("out=");
    EXPECT_TRUE(c.has("out"));
    EXPECT_EQ(c.getString("out"), "");
    EXPECT_EQ(c.getString("out", "fallback"), "");
    c.parseItem("trace_out =   ");
    EXPECT_EQ(c.getString("trace_out"), "");
}

TEST(Config, DoubleEqualsSplitsOnTheFirst)
{
    // "key==v" is key "key", value "=v" — the first '=' is the
    // separator and everything after belongs to the value.
    Config c;
    c.parseItem("key==v");
    EXPECT_EQ(c.getString("key"), "=v");
    c.parseItem("a===");
    EXPECT_EQ(c.getString("a"), "==");
}

TEST(Config, DuplicateKeysLastOneWins)
{
    // CLI overrides config-file text by parsing later: the most
    // recent assignment is the one queries see, with no duplicates
    // left in keys().
    Config c;
    c.parseItem("design=bpim");
    c.parseItem("design=atfim");
    EXPECT_EQ(c.getString("design"), "atfim");
    c.parseText("n = 1\nn = 2\nn = 3\n");
    EXPECT_EQ(c.getInt("n"), 3);
    EXPECT_EQ(c.keys().size(), 2u);
}

TEST(ConfigDeath, EmptyKeyIsFatal)
{
    Config c;
    EXPECT_EXIT({ c.parseItem("=value"); }, testing::ExitedWithCode(1),
                "empty key");
    EXPECT_EXIT({ c.parseItem("  = x"); }, testing::ExitedWithCode(1),
                "empty key");
}

TEST(Config, UnknownKeysAreStoredButNeverQueriedKeys)
{
    Config c;
    c.set("design", "atfim");
    c.set("desing", "atfim"); // typo: never queried
    (void)c.getString("design", "");
    auto unknown = c.unknownKeys();
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "desing");

    // The explicit known list also clears a key.
    EXPECT_TRUE(c.unknownKeys({"desing"}).empty());
}

TEST(Config, SuggestKeyFindsCloseCandidate)
{
    Config c;
    c.set("design", "atfim");
    (void)c.getString("design", "");
    EXPECT_EQ(c.suggestKey("desing"), "design");
    EXPECT_EQ(c.suggestKey("strict_confg", {"strict_config"}),
              "strict_config");
    // Nothing close: no suggestion.
    EXPECT_EQ(c.suggestKey("completely_different_key"), "");
}

TEST(Config, CheckKnownKeysWarnsByDefault)
{
    Config c;
    c.set("design", "atfim");
    c.set("desing", "atfim");
    (void)c.getString("design", "");
    u64 warns = warnCount();
    c.checkKnownKeys();
    EXPECT_EQ(warnCount(), warns + 1);
}

TEST(ConfigDeath, CheckKnownKeysStrictIsFatalWithSuggestion)
{
    Config c;
    c.set("design", "atfim");
    c.set("desing", "atfim");
    (void)c.getString("design", "");
    EXPECT_EXIT({ c.checkKnownKeys({}, true); },
                testing::ExitedWithCode(1),
                "unknown config key 'desing'.*did you mean 'design'");
}

TEST(ConfigDeath, IntErrorReportsKeyAndRawValue)
{
    Config c;
    c.set("hmc.vaults", "thirty-two");
    EXPECT_EXIT({ (void)c.getInt("hmc.vaults"); },
                testing::ExitedWithCode(1),
                "'hmc.vaults' = 'thirty-two' is not an integer");
}

TEST(ConfigDeath, DoubleErrorReportsKeyAndRawValue)
{
    Config c;
    c.set("fault_link_ber", "1e-3x");
    EXPECT_EXIT({ (void)c.getDouble("fault_link_ber"); },
                testing::ExitedWithCode(1),
                "'fault_link_ber' = '1e-3x' is not a number");
}

TEST(ConfigDeath, BoolErrorReportsKeyAndRawValue)
{
    Config c;
    c.set("strict_config", "Maybe");
    EXPECT_EXIT({ (void)c.getBool("strict_config"); },
                testing::ExitedWithCode(1),
                "'strict_config' = 'Maybe' is not a boolean");
}

TEST(ConfigDeath, MissingRequiredKeyIsFatal)
{
    Config c;
    EXPECT_EXIT({ (void)c.getInt("nope"); }, testing::ExitedWithCode(1),
                "missing required config key");
}

TEST(ConfigDeath, MalformedNumberIsFatal)
{
    Config c;
    c.set("n", "abc");
    EXPECT_EXIT({ (void)c.getInt("n"); }, testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ConfigDeath, MalformedItemIsFatal)
{
    Config c;
    EXPECT_EXIT({ c.parseItem("no-equals-sign"); },
                testing::ExitedWithCode(1), "malformed config item");
}

} // namespace
} // namespace texpim
