#include <gtest/gtest.h>

#include "common/units.hh"

namespace texpim {
namespace {

TEST(Units, GbpsToBytesPerCycleAtOneGHz)
{
    // 128 GB/s at a 1 GHz core clock is 128 bytes per cycle.
    EXPECT_DOUBLE_EQ(gbpsToBytesPerCycle(128.0), 128.0);
    EXPECT_DOUBLE_EQ(gbpsToBytesPerCycle(320.0), 320.0);
}

TEST(Units, RoundTrip)
{
    EXPECT_DOUBLE_EQ(bytesPerCycleToGbps(gbpsToBytesPerCycle(512.0)), 512.0);
}

TEST(Units, SerializationRoundsUp)
{
    EXPECT_EQ(serializationCycles(64, 16.0), 4u);
    EXPECT_EQ(serializationCycles(65, 16.0), 5u);
    EXPECT_EQ(serializationCycles(1, 16.0), 1u); // min_cycles floor
    EXPECT_EQ(serializationCycles(1, 16.0, 3), 3u);
}

TEST(Units, CapacityConstants)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024ull * 1024u * 1024u);
}

} // namespace
} // namespace texpim
