#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace texpim {
namespace {

TEST(StatCounter, IncrementAndAdd)
{
    StatCounter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatAverage, MeanOverSamples)
{
    StatAverage a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(StatHistogram, BucketsAndSaturation)
{
    StatHistogram h(0.0, 10.0, 5);
    h.sample(0.5);   // bucket 0
    h.sample(3.0);   // bucket 1
    h.sample(9.9);   // bucket 4
    h.sample(-5.0);  // saturates into bucket 0
    h.sample(100.0); // saturates into bucket 4
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 2u);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_DOUBLE_EQ(h.min(), -5.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(StatGroup, RegistrationIsStableAndNamed)
{
    StatGroup g("gpu");
    StatCounter &c1 = g.counter("frags");
    c1 += 5;
    StatCounter &c2 = g.counter("frags");
    EXPECT_EQ(&c1, &c2);
    EXPECT_EQ(g.findCounter("frags").value(), 5u);
    EXPECT_TRUE(g.hasCounter("frags"));
    EXPECT_FALSE(g.hasCounter("absent"));
}

TEST(StatGroup, ResetAllClearsEverything)
{
    StatGroup g("x");
    g.counter("c") += 3;
    g.average("a").sample(1.0);
    g.histogram("h", 0, 1, 2).sample(0.5);
    g.resetAll();
    EXPECT_EQ(g.findCounter("c").value(), 0u);
    EXPECT_EQ(g.average("a").count(), 0u);
    EXPECT_EQ(g.histogram("h", 0, 1, 2).samples(), 0u);
}

TEST(StatGroup, DumpContainsQualifiedNames)
{
    StatGroup g("mem");
    g.counter("reads") += 7;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("mem.reads"), std::string::npos);
    EXPECT_NE(os.str().find("7"), std::string::npos);
}

TEST(StatGroupDeath, FindMissingCounterPanics)
{
    StatGroup g("x");
    EXPECT_DEATH({ (void)g.findCounter("nope"); }, "no counter");
}

TEST(StatHistogram, PercentilesOfUniformFill)
{
    StatHistogram h(0.0, 10.0, 10);
    for (unsigned i = 0; i < 10; ++i)
        h.sample(double(i) + 0.5); // one sample per bucket
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 9.5);
    // p99's interpolated 9.9 exceeds the observed max and is clamped.
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 9.5);
    // Everything clamps to the observed range.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 9.5);
}

TEST(StatHistogram, PercentileInterpolatesWithinBucket)
{
    StatHistogram h(0.0, 100.0, 10);
    for (unsigned i = 0; i < 100; ++i)
        h.sample(15.0); // all 100 samples in bucket [10, 20)
    // target = p*100 samples, all in one bucket of width 10:
    // v = 10 + p*10, clamped to [15, 15] -> always the sampled value.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 15.0);
    // Two-bucket split: 50 low, 50 high.
    StatHistogram h2(0.0, 2.0, 2);
    for (unsigned i = 0; i < 50; ++i)
        h2.sample(0.25);
    for (unsigned i = 0; i < 50; ++i)
        h2.sample(1.75);
    // p50 -> target 50, end of bucket 0 -> v = 1.0.
    EXPECT_DOUBLE_EQ(h2.percentile(0.50), 1.0);
    // p95 -> target 95, 45 into bucket 1 of 50 -> v = 1 + 0.9 = 1.9,
    // clamped to max 1.75.
    EXPECT_DOUBLE_EQ(h2.percentile(0.95), 1.75);
}

TEST(StatHistogram, PercentileOfEmptyIsZero)
{
    StatHistogram h(0.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(StatHistogram, ExposesBounds)
{
    StatHistogram h(2.0, 8.0, 3);
    EXPECT_DOUBLE_EQ(h.lo(), 2.0);
    EXPECT_DOUBLE_EQ(h.hi(), 8.0);
    EXPECT_EQ(h.buckets(), 3u);
}

TEST(StatGroup, FindAverageAndHasAverage)
{
    StatGroup g("g");
    g.average("lat").sample(3.0);
    ASSERT_TRUE(g.hasAverage("lat"));
    EXPECT_FALSE(g.hasAverage("nope"));
    EXPECT_DOUBLE_EQ(g.findAverage("lat").mean(), 3.0);
    EXPECT_EQ(g.findAverage("lat").count(), 1u);
}

TEST(StatGroupDeath, FindMissingAveragePanics)
{
    StatGroup g("g");
    EXPECT_DEATH({ (void)g.findAverage("nope"); }, "no average");
}

TEST(StatGroupDeath, HistogramShapeMismatchPanics)
{
    StatGroup g("g");
    g.histogram("h", 0.0, 10.0, 4);
    EXPECT_DEATH({ (void)g.histogram("h", 0.0, 20.0, 4); },
                 "different shape");
    EXPECT_DEATH({ (void)g.histogram("h", 0.0, 10.0, 8); },
                 "different shape");
}

TEST(StatGroup, HistogramRefindKeepsShape)
{
    StatGroup g("g");
    StatHistogram &h1 = g.histogram("h", 0.0, 10.0, 4);
    h1.sample(5.0);
    StatHistogram &h2 = g.histogram("h", 0.0, 10.0, 4);
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.samples(), 1u);
}

TEST(StatGroup, DescriptionsRecordedOnFirstMention)
{
    StatGroup g("g");
    g.counter("c", "counts things");
    g.counter("c"); // hot-path re-lookup without a description
    g.average("a", "averages things");
    g.histogram("h", 0.0, 1.0, 2, "bins things");
    EXPECT_EQ(g.description("c"), "counts things");
    EXPECT_EQ(g.description("a"), "averages things");
    EXPECT_EQ(g.description("h"), "bins things");
    EXPECT_EQ(g.description("absent"), "");
    // First non-empty mention wins; later text does not overwrite.
    g.counter("c", "other text");
    EXPECT_EQ(g.description("c"), "counts things");
}

TEST(StatHistogram, PercentileClampsOutOfRangeP)
{
    StatHistogram h(0.0, 10.0, 10);
    h.sample(3.5);
    // One sample: every percentile — including p outside [0, 1],
    // which clamps to the ends — returns the single observed value.
    for (double p : {-1.0, 0.0, 0.5, 1.0, 2.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 3.5) << "p=" << p;
}

TEST(StatHistogram, ResetRestoresTheEmptyContract)
{
    StatHistogram h(0.0, 10.0, 10);
    h.sample(2.5);
    h.sample(7.5);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    // The histogram keeps working after reset: fresh samples define
    // fresh bounds, unpolluted by pre-reset extremes.
    h.sample(9.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 9.5);
    EXPECT_DOUBLE_EQ(h.min(), 9.5);
    EXPECT_DOUBLE_EQ(h.max(), 9.5);
}

TEST(StatHistogram, SaturatedSamplesClampPercentilesToRawExtremes)
{
    // Out-of-bounds samples land in the edge buckets but record their
    // raw values as min/max, which bound every percentile: the
    // interpolated in-bucket value (<= hi) clamps UP to the raw min.
    StatHistogram h(0.0, 10.0, 10);
    for (unsigned i = 0; i < 10; ++i)
        h.sample(100.0); // all saturate into the last bucket
    EXPECT_DOUBLE_EQ(h.min(), 100.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    for (double p : {0.0, 0.5, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 100.0) << "p=" << p;
}

} // namespace
} // namespace texpim
