#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace texpim {
namespace {

TEST(StatCounter, IncrementAndAdd)
{
    StatCounter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatAverage, MeanOverSamples)
{
    StatAverage a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(StatHistogram, BucketsAndSaturation)
{
    StatHistogram h(0.0, 10.0, 5);
    h.sample(0.5);   // bucket 0
    h.sample(3.0);   // bucket 1
    h.sample(9.9);   // bucket 4
    h.sample(-5.0);  // saturates into bucket 0
    h.sample(100.0); // saturates into bucket 4
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 2u);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_DOUBLE_EQ(h.min(), -5.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(StatGroup, RegistrationIsStableAndNamed)
{
    StatGroup g("gpu");
    StatCounter &c1 = g.counter("frags");
    c1 += 5;
    StatCounter &c2 = g.counter("frags");
    EXPECT_EQ(&c1, &c2);
    EXPECT_EQ(g.findCounter("frags").value(), 5u);
    EXPECT_TRUE(g.hasCounter("frags"));
    EXPECT_FALSE(g.hasCounter("absent"));
}

TEST(StatGroup, ResetAllClearsEverything)
{
    StatGroup g("x");
    g.counter("c") += 3;
    g.average("a").sample(1.0);
    g.histogram("h", 0, 1, 2).sample(0.5);
    g.resetAll();
    EXPECT_EQ(g.findCounter("c").value(), 0u);
    EXPECT_EQ(g.average("a").count(), 0u);
    EXPECT_EQ(g.histogram("h", 0, 1, 2).samples(), 0u);
}

TEST(StatGroup, DumpContainsQualifiedNames)
{
    StatGroup g("mem");
    g.counter("reads") += 7;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("mem.reads"), std::string::npos);
    EXPECT_NE(os.str().find("7"), std::string::npos);
}

TEST(StatGroupDeath, FindMissingCounterPanics)
{
    StatGroup g("x");
    EXPECT_DEATH({ (void)g.findCounter("nope"); }, "no counter");
}

} // namespace
} // namespace texpim
