#include <gtest/gtest.h>

#include <memory>

#include "common/stat_registry.hh"

namespace texpim {
namespace {

/** Groups live in the registry exactly while they exist. */
TEST(StatRegistry, GroupsRegisterAndUnregister)
{
    StatRegistry &reg = StatRegistry::instance();
    size_t before = reg.size();
    {
        StatGroup g("reg_test_group");
        EXPECT_EQ(reg.size(), before + 1);
        bool found = false;
        for (const auto &[display, grp] : reg.groups())
            if (grp == &g) {
                found = true;
                EXPECT_EQ(display, "reg_test_group");
            }
        EXPECT_TRUE(found);
    }
    EXPECT_EQ(reg.size(), before);
    for (const auto &[display, grp] : reg.groups())
        EXPECT_NE(display, "reg_test_group");
}

TEST(StatRegistry, EnumerationIsSortedByName)
{
    StatGroup c("reg_c");
    StatGroup a("reg_a");
    StatGroup b("reg_b");
    std::vector<std::string> order;
    for (const auto &[display, grp] : StatRegistry::instance().groups())
        if (display.rfind("reg_", 0) == 0)
            order.push_back(display);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "reg_a");
    EXPECT_EQ(order[1], "reg_b");
    EXPECT_EQ(order[2], "reg_c");
}

TEST(StatRegistry, DuplicateNamesGetStableSuffixes)
{
    StatGroup g1("reg_dup");
    StatGroup g2("reg_dup");
    StatGroup g3("reg_dup");
    std::vector<std::pair<std::string, const StatGroup *>> dups;
    for (const auto &e : StatRegistry::instance().groups())
        if (e.second == &g1 || e.second == &g2 || e.second == &g3)
            dups.push_back(e);
    ASSERT_EQ(dups.size(), 3u);
    // Registration order decides the suffix.
    EXPECT_EQ(dups[0].first, "reg_dup");
    EXPECT_EQ(dups[0].second, &g1);
    EXPECT_EQ(dups[1].first, "reg_dup#2");
    EXPECT_EQ(dups[1].second, &g2);
    EXPECT_EQ(dups[2].first, "reg_dup#3");
    EXPECT_EQ(dups[2].second, &g3);
}

TEST(StatRegistry, SnapshotCoversEveryStatKind)
{
    StatGroup g("reg_snap");
    g.counter("c") += 7;
    g.average("a").sample(2.0);
    g.average("a").sample(4.0);
    g.histogram("h", 0.0, 10.0, 4).sample(3.0);

    StatRegistry::Snapshot s = StatRegistry::instance().snapshot();
    EXPECT_DOUBLE_EQ(s.at("reg_snap.c"), 7.0);
    EXPECT_DOUBLE_EQ(s.at("reg_snap.a.sum"), 6.0);
    EXPECT_DOUBLE_EQ(s.at("reg_snap.a.count"), 2.0);
    EXPECT_DOUBLE_EQ(s.at("reg_snap.h.samples"), 1.0);
}

TEST(StatRegistry, DeltaIsCurrentMinusSnapshot)
{
    StatGroup g("reg_delta");
    g.counter("c") += 10;
    StatRegistry::Snapshot before = StatRegistry::instance().snapshot();

    g.counter("c") += 5;
    g.average("a").sample(1.0); // new stat after the snapshot

    StatRegistry::Snapshot d = StatRegistry::instance().delta(before);
    EXPECT_DOUBLE_EQ(d.at("reg_delta.c"), 5.0);
    // Stats born after the snapshot contribute their full value.
    EXPECT_DOUBLE_EQ(d.at("reg_delta.a.count"), 1.0);
}

TEST(StatRegistry, ResetAllZeroesLiveGroupsAndDeltaFollows)
{
    StatGroup g("reg_reset");
    g.counter("c") += 42;
    g.histogram("h", 0.0, 1.0, 2).sample(0.5);

    StatRegistry::Snapshot before = StatRegistry::instance().snapshot();
    StatRegistry::instance().resetAll();

    EXPECT_EQ(g.findCounter("c").value(), 0u);
    EXPECT_EQ(g.histogram("h", 0.0, 1.0, 2).samples(), 0u);

    // Documented contract: post-reset deltas against a pre-reset
    // snapshot go negative; per-frame users re-snapshot after reset.
    StatRegistry::Snapshot d = StatRegistry::instance().delta(before);
    EXPECT_DOUBLE_EQ(d.at("reg_reset.c"), -42.0);

    StatRegistry::Snapshot fresh = StatRegistry::instance().snapshot();
    g.counter("c") += 3;
    EXPECT_DOUBLE_EQ(
        StatRegistry::instance().delta(fresh).at("reg_reset.c"), 3.0);
}

TEST(StatRegistry, PerFrameDeltaAcrossTwoFrames)
{
    // The per-frame accounting pattern end to end: snapshot, work,
    // delta, reset, re-snapshot, work, delta.
    StatGroup g("reg_frame");
    StatRegistry &reg = StatRegistry::instance();

    StatRegistry::Snapshot s0 = reg.snapshot();
    g.counter("tiles") += 4;
    EXPECT_DOUBLE_EQ(reg.delta(s0).at("reg_frame.tiles"), 4.0);

    g.resetAll();
    StatRegistry::Snapshot s1 = reg.snapshot();
    g.counter("tiles") += 9;
    EXPECT_DOUBLE_EQ(reg.delta(s1).at("reg_frame.tiles"), 9.0);
}

} // namespace
} // namespace texpim
