/**
 * @file
 * Perf bench for the two-phase renderer: render one Doom3 frame at
 * several `render_threads` settings, report frames/sec and the
 * phase-1/phase-2 wall-clock breakdown, and write BENCH_PERF.json.
 *
 * The scene is built once and shared; each timed run constructs a
 * fresh simulator in its own SimContext and times renderScene() only,
 * so the numbers measure the renderer, not procedural content
 * generation. Every run's image hash is compared against the first —
 * the bench exits non-zero if any thread count changes the image,
 * so a perf run doubles as a bit-identity smoke test.
 *
 * Usage:
 *   perf_render [width=640] [height=480] [frame=3] [design=baseline]
 *               [threads=0,1,4] [reps=3] [out=BENCH_PERF.json] [gate=0]
 *               [sampler=quad|scalar] [record_budget=0]
 *
 * threads=0 is the pre-split fused loop (the pre-PR serial renderer);
 * 1 is the serial two-phase pipeline; N>1 parallelizes phase 1. With
 * gate=1 the bench fails if the largest thread count is slower than
 * render_threads=1 (the CI perf-smoke contract). With record_budget=N
 * the bench fails if any two-phase run's *encoded* record bytes exceed
 * N — the CI guard against the stream codec regressing back toward
 * raw-array sizes. sampler= selects the phase-1 sampling path
 * (gpu.sampler); both must produce the identical image and cycles.
 *
 * BENCH_PERF.json schema ("texpim-perf-v2"): each entry of "runs"
 * holds render_threads, wall_sec, fps, wall_phase1_sec,
 * wall_phase2_sec, record_bytes (encoded stream bytes — what phase 1
 * hands to phase 2) and record_bytes_decoded (the raw record arrays
 * those streams decode to; the ratio is the codec's compression). The
 * fused loop (render_threads=0) has no phase split or record streams,
 * so its wall_phase*_sec fields are JSON null — never 0.0, which
 * would read as "a phase took no time". Consumers (tools/perf_history)
 * must treat null as "not applicable"; perf_history accepts v1 and v2
 * snapshots interchangeably.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/sim_context.hh"
#include "common/stat_export.hh"
#include "quality/image_metrics.hh"
#include "scene/game_profiles.hh"
#include "sim/design.hh"
#include "sim/simulator.hh"

using namespace texpim;

namespace {

double
wallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ThreadPoint
{
    unsigned threads = 0;
    double wallSec = 0.0; //!< best (min) renderScene wall over reps
    double phase1Sec = 0.0;
    double phase2Sec = 0.0;
    u64 recordBytes = 0;        //!< encoded stream bytes
    u64 recordBytesDecoded = 0; //!< raw record-array bytes
    u64 frameCycles = 0;
    u64 imageHash = 0;
};

Design
parseDesign(const std::string &d)
{
    if (d == "baseline")
        return Design::Baseline;
    if (d == "bpim")
        return Design::BPim;
    if (d == "stfim")
        return Design::STfim;
    if (d == "atfim")
        return Design::ATfim;
    std::fprintf(stderr, "perf_render: unknown design '%s'\n", d.c_str());
    std::exit(2);
}

std::vector<unsigned>
parseThreadList(const char *s)
{
    std::vector<unsigned> out;
    while (*s != '\0') {
        char *end = nullptr;
        out.push_back(unsigned(std::strtoul(s, &end, 10)));
        s = (*end == ',') ? end + 1 : end;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned width = 640, height = 480, frame = 3, reps = 3;
    Design design = Design::Baseline;
    std::vector<unsigned> threads = {0, 1, 4};
    std::string out_path = "BENCH_PERF.json";
    bool gate = false;
    u64 record_budget = 0; // 0 = no encoded-size gate
    GpuParams::SamplerKind sampler = GpuParams::SamplerKind::Quad;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto val = [&](const char *k) -> const char * {
            size_t n = std::strlen(k);
            return std::strncmp(a, k, n) == 0 && a[n] == '='
                       ? a + n + 1
                       : nullptr;
        };
        if (const char *v = val("width"))
            width = unsigned(std::atoi(v));
        else if (const char *v = val("height"))
            height = unsigned(std::atoi(v));
        else if (const char *v = val("frame"))
            frame = unsigned(std::atoi(v));
        else if (const char *v = val("reps"))
            reps = unsigned(std::atoi(v));
        else if (const char *v = val("threads"))
            threads = parseThreadList(v);
        else if (const char *v = val("out"))
            out_path = v;
        else if (const char *v = val("gate"))
            gate = std::atoi(v) != 0;
        else if (const char *v = val("record_budget"))
            record_budget = u64(std::strtoull(v, nullptr, 10));
        else if (const char *v = val("design"))
            design = parseDesign(v);
        else if (const char *v = val("sampler")) {
            if (std::strcmp(v, "scalar") == 0)
                sampler = GpuParams::SamplerKind::Scalar;
            else if (std::strcmp(v, "quad") == 0)
                sampler = GpuParams::SamplerKind::Quad;
            else {
                std::fprintf(stderr,
                             "perf_render: unknown sampler '%s'\n", v);
                return 2;
            }
        }
        else {
            std::fprintf(stderr, "perf_render: unknown arg '%s'\n", a);
            return 2;
        }
    }
    if (threads.empty() || reps == 0) {
        std::fprintf(stderr, "perf_render: empty threads/reps\n");
        return 2;
    }

    Workload wl{Game::Doom3, width, height};
    Scene scene = buildGameScene(wl, frame, 0x7e01d);
    scene.settings.maxAniso = defaultMaxAniso(width);

    std::printf("perf_render: %s %ux%u frame %u, design %s, %u reps\n\n",
                wl.label().c_str(), width, height, frame,
                designName(design), reps);
    std::printf("%8s %10s %8s %9s %9s %11s\n", "threads", "wall_s", "fps",
                "phase1_s", "phase2_s", "record_MiB");

    std::vector<ThreadPoint> points;
    for (unsigned t : threads) {
        ThreadPoint pt;
        pt.threads = t;
        for (unsigned r = 0; r < reps; ++r) {
            SimContext ctx;
            SimContext::Scope scope(ctx);
            SimConfig cfg;
            cfg.design = design;
            cfg.gpu.deterministicSchedule = true;
            cfg.gpu.renderThreads = t;
            cfg.gpu.sampler = sampler;
            RenderingSimulator sim(cfg);
            double t0 = wallSeconds();
            SimResult res = sim.renderScene(scene);
            double wall = wallSeconds() - t0;
            if (r == 0 || wall < pt.wallSec) {
                pt.wallSec = wall;
                pt.phase1Sec = res.frame.wallPhase1Sec;
                pt.phase2Sec = res.frame.wallPhase2Sec;
            }
            pt.recordBytes = res.frame.recordBytes;
            pt.recordBytesDecoded = res.frame.recordBytesDecoded;
            pt.frameCycles = res.frame.frameCycles;
            pt.imageHash = imageHash(*res.image);
        }
        if (t == 0)
            std::printf("%8u %10.3f %8.2f %9s %9s %11.2f\n", pt.threads,
                        pt.wallSec, 1.0 / pt.wallSec, "-", "-",
                        double(pt.recordBytes) / (1024 * 1024));
        else
            std::printf("%8u %10.3f %8.2f %9.3f %9.3f %11.2f\n",
                        pt.threads, pt.wallSec, 1.0 / pt.wallSec,
                        pt.phase1Sec, pt.phase2Sec,
                        double(pt.recordBytes) / (1024 * 1024));
        points.push_back(pt);
    }

    // Bit-identity across every thread count: the two-phase contract.
    bool identical = true;
    for (const ThreadPoint &pt : points)
        if (pt.imageHash != points[0].imageHash ||
            pt.frameCycles != points[0].frameCycles) {
            std::fprintf(stderr,
                         "FAIL: threads=%u diverged (hash 0x%llx vs "
                         "0x%llx, cycles %llu vs %llu)\n",
                         pt.threads,
                         (unsigned long long)pt.imageHash,
                         (unsigned long long)points[0].imageHash,
                         (unsigned long long)pt.frameCycles,
                         (unsigned long long)points[0].frameCycles);
            identical = false;
        }

    JsonWriter w;
    w.beginObject();
    w.keyValue("schema", "texpim-perf-v2");
    w.keyValue("sampler", sampler == GpuParams::SamplerKind::Quad
                              ? "quad"
                              : "scalar");
    w.keyValue("bench", "perf_render");
    w.keyValue("workload", wl.label());
    w.keyValue("design", std::string(designName(design)));
    w.keyValue("width", width);
    w.keyValue("height", height);
    w.keyValue("frame", frame);
    w.keyValue("reps", reps);
    // Interpreting parallel speedups needs the host's core count: a
    // single-core runner legitimately shows none.
    w.keyValue("host_threads", std::thread::hardware_concurrency());
    w.keyValue("frame_cycles", points[0].frameCycles);
    w.keyValue("bit_identical", identical);
    w.key("runs").beginArray();
    for (const ThreadPoint &pt : points) {
        w.beginObject();
        w.keyValue("render_threads", pt.threads);
        w.keyValue("wall_sec", pt.wallSec);
        w.keyValue("fps", 1.0 / pt.wallSec);
        // The fused loop has no phases; null, not a misleading 0.0.
        if (pt.threads == 0) {
            w.keyNull("wall_phase1_sec");
            w.keyNull("wall_phase2_sec");
        } else {
            w.keyValue("wall_phase1_sec", pt.phase1Sec);
            w.keyValue("wall_phase2_sec", pt.phase2Sec);
        }
        w.keyValue("record_bytes", pt.recordBytes);
        w.keyValue("record_bytes_decoded", pt.recordBytesDecoded);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    writeTextFile(out_path, w.str());
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!identical)
        return 1;

    if (record_budget > 0) {
        // CI contract: the encoded replay streams must stay under the
        // checked-in budget (a codec or batching regression shows up
        // here long before wall time moves on a noisy runner).
        for (const ThreadPoint &pt : points) {
            if (pt.threads == 0)
                continue; // fused loop records nothing
            if (pt.recordBytes > record_budget) {
                std::fprintf(stderr,
                             "FAIL: render_threads=%u encoded record "
                             "bytes %llu exceed budget %llu\n",
                             pt.threads,
                             (unsigned long long)pt.recordBytes,
                             (unsigned long long)record_budget);
                return 1;
            }
        }
    }

    if (gate) {
        // CI contract: the widest pool must not be slower than the
        // serial two-phase pipeline.
        const ThreadPoint *serial = nullptr, *widest = nullptr;
        for (const ThreadPoint &pt : points) {
            if (pt.threads == 1)
                serial = &pt;
            if (widest == nullptr || pt.threads > widest->threads)
                widest = &pt;
        }
        if (serial != nullptr && widest != nullptr &&
            widest->threads > 1 && widest->wallSec > serial->wallSec) {
            std::fprintf(stderr,
                         "FAIL: render_threads=%u (%.3fs) slower than "
                         "render_threads=1 (%.3fs)\n",
                         widest->threads, widest->wallSec,
                         serial->wallSec);
            return 1;
        }
    }
    return 0;
}
