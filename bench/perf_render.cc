/**
 * @file
 * Perf bench for the two-phase renderer: render one Doom3 frame at
 * several `render_threads` settings, report frames/sec and the
 * phase-1/phase-2 wall-clock breakdown, and write BENCH_PERF.json.
 *
 * The scene is built once and shared; each timed run constructs a
 * fresh simulator in its own SimContext and times renderScene() only,
 * so the numbers measure the renderer, not procedural content
 * generation. Every run's image hash is compared against the first —
 * the bench exits non-zero if any thread count changes the image,
 * so a perf run doubles as a bit-identity smoke test.
 *
 * Usage:
 *   perf_render [width=640] [height=480] [frame=3] [design=baseline]
 *               [threads=0,1,4] [reps=3] [out=BENCH_PERF.json] [gate=0]
 *               [sampler=quad|scalar] [record_budget=0]
 *               [frames=0] [depths=1,2,4] [seq_threads=4] [seq_gate=0]
 *
 * threads=0 is the pre-split fused loop (the pre-PR serial renderer);
 * 1 is the serial two-phase pipeline; N>1 parallelizes phase 1. With
 * gate=1 the bench fails if the largest thread count is slower than
 * render_threads=1 beyond a noise band — and on a host without at
 * least 2 cores the band widens to a thread-overhead bound, because a
 * parallel phase 1 cannot be faster there, only not-pathological.
 * With record_budget=N the bench fails if any two-phase run's
 * *encoded* record bytes exceed N — the CI guard against the stream
 * codec regressing back toward raw-array sizes. sampler= selects the
 * phase-1 sampling path (gpu.sampler); both must produce the
 * identical image and cycles.
 *
 * With frames=N > 0 the bench additionally times an N-frame camera-
 * path sequence (renderSequence) at each gpu.pipeline_depth in
 * depths=, with seq_threads render threads, and records a "sequence"
 * object in the same JSON: per-depth wall_sec and fps
 * (frames per second of simulated frames), plus the inter-frame reuse
 * totals. Per-frame images and cycles must be bit-identical across
 * every depth (always enforced). seq_gate=X additionally requires the
 * best pipelined (depth > 1) fps to be at least X times the depth-1
 * fps — enforced only when the host has >= 2 cores and seq_threads
 * >= 2, since phase overlap needs real parallelism.
 *
 * BENCH_PERF.json schema ("texpim-perf-v3"): each entry of "runs"
 * holds render_threads, wall_sec, fps, wall_phase1_sec,
 * wall_phase2_sec, record_bytes (encoded stream bytes — what phase 1
 * hands to phase 2) and record_bytes_decoded (the raw record arrays
 * those streams decode to; the ratio is the codec's compression). The
 * fused loop (render_threads=0) has no phase split or record streams,
 * so its wall_phase*_sec fields are JSON null — never 0.0, which
 * would read as "a phase took no time". Consumers (tools/perf_history)
 * must treat null as "not applicable"; perf_history accepts v1, v2
 * and v3 snapshots interchangeably. v3 adds the optional "sequence"
 * object described above (absent when frames=0).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/sim_context.hh"
#include "common/stat_export.hh"
#include "quality/image_metrics.hh"
#include "scene/game_profiles.hh"
#include "sim/design.hh"
#include "sim/simulator.hh"

using namespace texpim;

namespace {

double
wallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ThreadPoint
{
    unsigned threads = 0;
    double wallSec = 0.0; //!< best (min) renderScene wall over reps
    double phase1Sec = 0.0;
    double phase2Sec = 0.0;
    u64 recordBytes = 0;        //!< encoded stream bytes
    u64 recordBytesDecoded = 0; //!< raw record-array bytes
    u64 frameCycles = 0;
    u64 imageHash = 0;
};

struct DepthPoint
{
    unsigned depth = 0;
    double wallSec = 0.0; //!< best (min) renderSequence wall over reps
    std::vector<u64> hashes;   //!< per-frame image hashes
    std::vector<u64> cycles;   //!< per-frame cycle counts
    u64 tagHits = 0;           //!< inter-frame tag hits, summed
    u64 reusedPrev = 0;        //!< blocks reused from previous frame
};

Design
parseDesign(const std::string &d)
{
    if (d == "baseline")
        return Design::Baseline;
    if (d == "bpim")
        return Design::BPim;
    if (d == "stfim")
        return Design::STfim;
    if (d == "atfim")
        return Design::ATfim;
    std::fprintf(stderr, "perf_render: unknown design '%s'\n", d.c_str());
    std::exit(2);
}

std::vector<unsigned>
parseThreadList(const char *s)
{
    std::vector<unsigned> out;
    while (*s != '\0') {
        char *end = nullptr;
        out.push_back(unsigned(std::strtoul(s, &end, 10)));
        s = (*end == ',') ? end + 1 : end;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned width = 640, height = 480, frame = 3, reps = 3;
    Design design = Design::Baseline;
    std::vector<unsigned> threads = {0, 1, 4};
    std::string out_path = "BENCH_PERF.json";
    bool gate = false;
    u64 record_budget = 0; // 0 = no encoded-size gate
    GpuParams::SamplerKind sampler = GpuParams::SamplerKind::Quad;
    unsigned seq_frames = 0; // 0 = no sequence sweep
    std::vector<unsigned> depths = {1, 2, 4};
    unsigned seq_threads = 4;
    double seq_gate = 0.0; // 0 = no pipelining-speedup gate

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto val = [&](const char *k) -> const char * {
            size_t n = std::strlen(k);
            return std::strncmp(a, k, n) == 0 && a[n] == '='
                       ? a + n + 1
                       : nullptr;
        };
        if (const char *v = val("width"))
            width = unsigned(std::atoi(v));
        else if (const char *v = val("height"))
            height = unsigned(std::atoi(v));
        else if (const char *v = val("frame"))
            frame = unsigned(std::atoi(v));
        else if (const char *v = val("reps"))
            reps = unsigned(std::atoi(v));
        else if (const char *v = val("threads"))
            threads = parseThreadList(v);
        else if (const char *v = val("out"))
            out_path = v;
        else if (const char *v = val("gate"))
            gate = std::atoi(v) != 0;
        else if (const char *v = val("record_budget"))
            record_budget = u64(std::strtoull(v, nullptr, 10));
        else if (const char *v = val("frames"))
            seq_frames = unsigned(std::atoi(v));
        else if (const char *v = val("depths"))
            depths = parseThreadList(v);
        else if (const char *v = val("seq_threads"))
            seq_threads = unsigned(std::atoi(v));
        else if (const char *v = val("seq_gate"))
            seq_gate = std::atof(v);
        else if (const char *v = val("design"))
            design = parseDesign(v);
        else if (const char *v = val("sampler")) {
            if (std::strcmp(v, "scalar") == 0)
                sampler = GpuParams::SamplerKind::Scalar;
            else if (std::strcmp(v, "quad") == 0)
                sampler = GpuParams::SamplerKind::Quad;
            else {
                std::fprintf(stderr,
                             "perf_render: unknown sampler '%s'\n", v);
                return 2;
            }
        }
        else {
            std::fprintf(stderr, "perf_render: unknown arg '%s'\n", a);
            return 2;
        }
    }
    if (threads.empty() || reps == 0) {
        std::fprintf(stderr, "perf_render: empty threads/reps\n");
        return 2;
    }

    Workload wl{Game::Doom3, width, height};
    Scene scene = buildGameScene(wl, frame, 0x7e01d);
    scene.settings.maxAniso = defaultMaxAniso(width);

    std::printf("perf_render: %s %ux%u frame %u, design %s, %u reps\n\n",
                wl.label().c_str(), width, height, frame,
                designName(design), reps);
    std::printf("%8s %10s %8s %9s %9s %11s\n", "threads", "wall_s", "fps",
                "phase1_s", "phase2_s", "record_MiB");

    std::vector<ThreadPoint> points;
    for (unsigned t : threads) {
        ThreadPoint pt;
        pt.threads = t;
        for (unsigned r = 0; r < reps; ++r) {
            SimContext ctx;
            SimContext::Scope scope(ctx);
            SimConfig cfg;
            cfg.design = design;
            cfg.gpu.deterministicSchedule = true;
            cfg.gpu.renderThreads = t;
            cfg.gpu.sampler = sampler;
            RenderingSimulator sim(cfg);
            double t0 = wallSeconds();
            SimResult res = sim.renderScene(scene);
            double wall = wallSeconds() - t0;
            if (r == 0 || wall < pt.wallSec) {
                pt.wallSec = wall;
                pt.phase1Sec = res.frame.wallPhase1Sec;
                pt.phase2Sec = res.frame.wallPhase2Sec;
            }
            pt.recordBytes = res.frame.recordBytes;
            pt.recordBytesDecoded = res.frame.recordBytesDecoded;
            pt.frameCycles = res.frame.frameCycles;
            pt.imageHash = imageHash(*res.image);
        }
        if (t == 0)
            std::printf("%8u %10.3f %8.2f %9s %9s %11.2f\n", pt.threads,
                        pt.wallSec, 1.0 / pt.wallSec, "-", "-",
                        double(pt.recordBytes) / (1024 * 1024));
        else
            std::printf("%8u %10.3f %8.2f %9.3f %9.3f %11.2f\n",
                        pt.threads, pt.wallSec, 1.0 / pt.wallSec,
                        pt.phase1Sec, pt.phase2Sec,
                        double(pt.recordBytes) / (1024 * 1024));
        points.push_back(pt);
    }

    // Bit-identity across every thread count: the two-phase contract.
    bool identical = true;
    for (const ThreadPoint &pt : points)
        if (pt.imageHash != points[0].imageHash ||
            pt.frameCycles != points[0].frameCycles) {
            std::fprintf(stderr,
                         "FAIL: threads=%u diverged (hash 0x%llx vs "
                         "0x%llx, cycles %llu vs %llu)\n",
                         pt.threads,
                         (unsigned long long)pt.imageHash,
                         (unsigned long long)points[0].imageHash,
                         (unsigned long long)pt.frameCycles,
                         (unsigned long long)points[0].frameCycles);
            identical = false;
        }

    // --- Sequence sweep: pipeline depth vs throughput ---------------
    std::vector<DepthPoint> seq_points;
    bool seq_identical = true;
    if (seq_frames > 0) {
        if (depths.empty() || seq_threads == 0) {
            std::fprintf(stderr,
                         "perf_render: sequence mode needs non-empty "
                         "depths= and seq_threads >= 1\n");
            return 2;
        }
        std::printf("\nsequence: %u frames from %u, render_threads=%u\n",
                    seq_frames, frame, seq_threads);
        std::printf("%8s %10s %8s %14s %14s\n", "depth", "wall_s", "fps",
                    "tag_hits", "blocks_reused");
        for (unsigned depth : depths) {
            DepthPoint dp;
            dp.depth = depth;
            for (unsigned r = 0; r < reps; ++r) {
                SimContext ctx;
                SimContext::Scope scope(ctx);
                SimConfig cfg;
                cfg.design = design;
                cfg.gpu.deterministicSchedule = true;
                cfg.gpu.renderThreads = seq_threads;
                cfg.gpu.pipelineDepth = depth;
                cfg.gpu.sampler = sampler;
                RenderingSimulator sim(cfg);
                double t0 = wallSeconds();
                auto res = sim.renderSequence(wl, seq_frames, frame);
                double wall = wallSeconds() - t0;
                if (r == 0 || wall < dp.wallSec)
                    dp.wallSec = wall;
                dp.hashes.clear();
                dp.cycles.clear();
                dp.tagHits = dp.reusedPrev = 0;
                for (const SimResult &f : res) {
                    dp.hashes.push_back(imageHash(*f.image));
                    dp.cycles.push_back(f.frame.frameCycles);
                    dp.tagHits += f.interFrameTagHits;
                    dp.reusedPrev += f.seqBlocksReusedPrev;
                }
            }
            std::printf("%8u %10.3f %8.2f %14llu %14llu\n", dp.depth,
                        dp.wallSec, double(seq_frames) / dp.wallSec,
                        (unsigned long long)dp.tagHits,
                        (unsigned long long)dp.reusedPrev);
            seq_points.push_back(std::move(dp));
        }
        // Pipelining must not move a single pixel, cycle or counter of
        // any frame: compare every depth against the first.
        for (const DepthPoint &dp : seq_points)
            if (dp.hashes != seq_points[0].hashes ||
                dp.cycles != seq_points[0].cycles ||
                dp.tagHits != seq_points[0].tagHits ||
                dp.reusedPrev != seq_points[0].reusedPrev) {
                std::fprintf(stderr,
                             "FAIL: pipeline_depth=%u diverged from "
                             "depth=%u\n",
                             dp.depth, seq_points[0].depth);
                seq_identical = false;
            }
    }

    JsonWriter w;
    w.beginObject();
    w.keyValue("schema", "texpim-perf-v3");
    w.keyValue("sampler", sampler == GpuParams::SamplerKind::Quad
                              ? "quad"
                              : "scalar");
    w.keyValue("bench", "perf_render");
    w.keyValue("workload", wl.label());
    w.keyValue("design", std::string(designName(design)));
    w.keyValue("width", width);
    w.keyValue("height", height);
    w.keyValue("frame", frame);
    w.keyValue("reps", reps);
    // Interpreting parallel speedups needs the host's core count: a
    // single-core runner legitimately shows none.
    w.keyValue("host_threads", std::thread::hardware_concurrency());
    w.keyValue("frame_cycles", points[0].frameCycles);
    w.keyValue("bit_identical", identical);
    w.key("runs").beginArray();
    for (const ThreadPoint &pt : points) {
        w.beginObject();
        w.keyValue("render_threads", pt.threads);
        w.keyValue("wall_sec", pt.wallSec);
        w.keyValue("fps", 1.0 / pt.wallSec);
        // The fused loop has no phases; null, not a misleading 0.0.
        if (pt.threads == 0) {
            w.keyNull("wall_phase1_sec");
            w.keyNull("wall_phase2_sec");
        } else {
            w.keyValue("wall_phase1_sec", pt.phase1Sec);
            w.keyValue("wall_phase2_sec", pt.phase2Sec);
        }
        w.keyValue("record_bytes", pt.recordBytes);
        w.keyValue("record_bytes_decoded", pt.recordBytesDecoded);
        w.endObject();
    }
    w.endArray();
    if (!seq_points.empty()) {
        // The inter-frame pipeline sweep. fps here is sequence
        // throughput (simulated frames per wall second); perf_history
        // tracks it as its own "<workload>-seq<N>" trajectory.
        w.key("sequence").beginObject();
        w.keyValue("frames", seq_frames);
        w.keyValue("start_frame", frame);
        w.keyValue("render_threads", seq_threads);
        w.keyValue("frame_cycles", seq_points[0].cycles.empty()
                                       ? u64(0)
                                       : seq_points[0].cycles[0]);
        w.keyValue("bit_identical", seq_identical);
        w.key("runs").beginArray();
        for (const DepthPoint &dp : seq_points) {
            w.beginObject();
            w.keyValue("pipeline_depth", dp.depth);
            w.keyValue("wall_sec", dp.wallSec);
            w.keyValue("fps", double(seq_frames) / dp.wallSec);
            w.keyValue("interframe_tag_hits", dp.tagHits);
            w.keyValue("blocks_reused_prev", dp.reusedPrev);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    writeTextFile(out_path, w.str());
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!identical || !seq_identical)
        return 1;

    if (record_budget > 0) {
        // CI contract: the encoded replay streams must stay under the
        // checked-in budget (a codec or batching regression shows up
        // here long before wall time moves on a noisy runner).
        for (const ThreadPoint &pt : points) {
            if (pt.threads == 0)
                continue; // fused loop records nothing
            if (pt.recordBytes > record_budget) {
                std::fprintf(stderr,
                             "FAIL: render_threads=%u encoded record "
                             "bytes %llu exceed budget %llu\n",
                             pt.threads,
                             (unsigned long long)pt.recordBytes,
                             (unsigned long long)record_budget);
                return 1;
            }
        }
    }

    unsigned host_cores = std::thread::hardware_concurrency();
    if (gate) {
        // CI contract: the widest pool must not be slower than the
        // serial two-phase pipeline beyond scheduling noise. On a host
        // without 2 cores the worker pool cannot win wall clock — the
        // threads time-slice one core — so the band widens to a
        // thread-overhead bound: the gate then only catches
        // pathological slowdowns (a lock convoy, oversubscription
        // collapse), which is all a 1-core runner can measure.
        const ThreadPoint *serial = nullptr, *widest = nullptr;
        for (const ThreadPoint &pt : points) {
            if (pt.threads == 1)
                serial = &pt;
            if (widest == nullptr || pt.threads > widest->threads)
                widest = &pt;
        }
        double band = host_cores >= 2 ? 0.05 : 0.30;
        if (serial != nullptr && widest != nullptr &&
            widest->threads > 1 &&
            widest->wallSec > serial->wallSec * (1.0 + band)) {
            std::fprintf(stderr,
                         "FAIL: render_threads=%u (%.3fs) slower than "
                         "render_threads=1 (%.3fs) beyond the %.0f%% "
                         "band (%u host cores)\n",
                         widest->threads, widest->wallSec,
                         serial->wallSec, band * 100.0, host_cores);
            return 1;
        }
    }

    if (seq_gate > 0.0 && !seq_points.empty()) {
        const DepthPoint *unpiped = nullptr;
        const DepthPoint *best = nullptr;
        for (const DepthPoint &dp : seq_points) {
            if (dp.depth == 1)
                unpiped = &dp;
            else if (best == nullptr || dp.wallSec < best->wallSec)
                best = &dp;
        }
        if (host_cores < 2 || seq_threads < 2) {
            std::printf("seq_gate: skipped (host has %u cores, "
                        "seq_threads=%u — phase overlap needs real "
                        "parallelism)\n",
                        host_cores, seq_threads);
        } else if (unpiped != nullptr && best != nullptr) {
            double speedup = unpiped->wallSec / best->wallSec;
            std::printf("seq_gate: depth=%u is %.2fx depth=1 "
                        "(need %.2fx)\n",
                        best->depth, speedup, seq_gate);
            if (speedup < seq_gate) {
                std::fprintf(stderr,
                             "FAIL: pipelined sequence speedup %.2fx "
                             "below the %.2fx gate\n",
                             speedup, seq_gate);
                return 1;
            }
        }
    }
    return 0;
}
