/**
 * @file
 * Fig. 2: memory-bandwidth usage breakdown of baseline 3D rendering.
 * The paper reports texture fetches at ~60% of total memory access on
 * average across the game/resolution suite.
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 2 - memory bandwidth usage breakdown (baseline GPU)",
                "texture fetching ~60% of total memory access on average");

    SimConfig cfg;
    cfg.design = Design::Baseline;
    auto results = runSuite(cfg, opt);

    ResultTable table("off-chip traffic share by class (%)",
                      workloadLabels(opt));
    const TrafficClass classes[] = {
        TrafficClass::Texture, TrafficClass::FrameBuffer,
        TrafficClass::Geometry, TrafficClass::ZTest,
        TrafficClass::ColorBuffer,
    };
    for (TrafficClass c : classes) {
        table.addColumn(trafficClassName(c),
                        metricOf(results, [&](const SimResult &r) {
                            double t = double(r.offChipTotalBytes);
                            return t > 0 ? 100.0 *
                                               double(r.offChipBytesByClass
                                                          [unsigned(c)]) /
                                               t
                                         : 0.0;
                        }));
    }
    table.addColumn("total_MB", metricOf(results, [](const SimResult &r) {
                        return double(r.offChipTotalBytes) / 1e6;
                    }));
    table.print(std::cout, 1);
    return 0;
}
