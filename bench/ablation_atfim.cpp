/**
 * @file
 * Ablation of A-TFIM's design choices (DESIGN.md calls these out):
 *   - Child Texel Consolidation on/off (duplicate child fetches hit
 *     the vaults individually when off);
 *   - Offloading Unit package compaction on/off (one full-size
 *     package per missing parent when off);
 *   - S-TFIM with quad-batched packages (the packaging fix that does
 *     NOT rescue S-TFIM, showing the cache loss is the deeper issue).
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Ablation - A-TFIM and S-TFIM design choices",
                "consolidation and package compaction each buy "
                "traffic/latency; quad packaging alone does not fix "
                "S-TFIM");

    auto frame = [](const SimResult &r) {
        return double(r.frame.frameCycles);
    };
    auto traffic = [](const SimResult &r) {
        return double(r.textureTrafficBytes);
    };

    SimConfig base;
    base.design = Design::Baseline;
    auto b = runSuite(base, opt);
    auto base_frame = metricOf(b, frame);
    auto base_traffic = metricOf(b, traffic);

    ResultTable speed("rendering speedup vs baseline (x)",
                      workloadLabels(opt));
    ResultTable traf("normalized texture traffic", workloadLabels(opt));

    {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        auto r = runSuite(cfg, opt);
        speed.addColumn("A-TFIM", ratio(base_frame, metricOf(r, frame)));
        traf.addColumn("A-TFIM", ratio(metricOf(r, traffic), base_traffic));
    }
    {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.atfim.consolidateChildren = false;
        auto r = runSuite(cfg, opt);
        speed.addColumn("no-consolidation",
                        ratio(base_frame, metricOf(r, frame)));
        traf.addColumn("no-consolidation",
                       ratio(metricOf(r, traffic), base_traffic));
    }
    {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.atfim.compactPackages = false;
        auto r = runSuite(cfg, opt);
        speed.addColumn("no-compaction",
                        ratio(base_frame, metricOf(r, frame)));
        traf.addColumn("no-compaction",
                       ratio(metricOf(r, traffic), base_traffic));
    }
    {
        SimConfig cfg;
        cfg.design = Design::STfim;
        auto r = runSuite(cfg, opt);
        speed.addColumn("S-TFIM", ratio(base_frame, metricOf(r, frame)));
        traf.addColumn("S-TFIM", ratio(metricOf(r, traffic), base_traffic));
    }
    {
        SimConfig cfg;
        cfg.design = Design::STfim;
        cfg.mtu.requestsPerPackage = 4; // quad batching
        auto r = runSuite(cfg, opt);
        speed.addColumn("S-TFIM-quadpkg",
                        ratio(base_frame, metricOf(r, frame)));
        traf.addColumn("S-TFIM-quadpkg",
                       ratio(metricOf(r, traffic), base_traffic));
    }

    speed.print(std::cout);
    traf.print(std::cout);
    return 0;
}
