/**
 * @file
 * Ablation of A-TFIM's design choices (DESIGN.md calls these out):
 *   - Child Texel Consolidation on/off (duplicate child fetches hit
 *     the vaults individually when off);
 *   - Offloading Unit package compaction on/off (one full-size
 *     package per missing parent when off);
 *   - S-TFIM with quad-batched packages (the packaging fix that does
 *     NOT rescue S-TFIM, showing the cache loss is the deeper issue).
 *
 * All six (config x workload) suites run on one ExperimentRunner pool
 * (--jobs N / TEXPIM_JOBS).
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Ablation - A-TFIM and S-TFIM design choices",
                "consolidation and package compaction each buy "
                "traffic/latency; quad packaging alone does not fix "
                "S-TFIM");

    auto frame = [](const SimResult &r) {
        return double(r.frame.frameCycles);
    };
    auto traffic = [](const SimResult &r) {
        return double(r.textureTrafficBytes);
    };

    std::vector<std::string> names{"Baseline"};
    std::vector<SimConfig> cfgs(1);
    cfgs[0].design = Design::Baseline;
    {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfgs.push_back(cfg);
        names.push_back("A-TFIM");
    }
    {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.atfim.consolidateChildren = false;
        cfgs.push_back(cfg);
        names.push_back("no-consolidation");
    }
    {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.atfim.compactPackages = false;
        cfgs.push_back(cfg);
        names.push_back("no-compaction");
    }
    {
        SimConfig cfg;
        cfg.design = Design::STfim;
        cfgs.push_back(cfg);
        names.push_back("S-TFIM");
    }
    {
        SimConfig cfg;
        cfg.design = Design::STfim;
        cfg.mtu.requestsPerPackage = 4; // quad batching
        cfgs.push_back(cfg);
        names.push_back("S-TFIM-quadpkg");
    }

    auto all = runSuites(cfgs, opt);
    auto base_frame = metricOf(all[0], frame);
    auto base_traffic = metricOf(all[0], traffic);

    ResultTable speed("rendering speedup vs baseline (x)",
                      workloadLabels(opt));
    ResultTable traf("normalized texture traffic", workloadLabels(opt));
    for (size_t c = 1; c < cfgs.size(); ++c) {
        speed.addColumn(names[c],
                        ratio(base_frame, metricOf(all[c], frame)));
        traf.addColumn(names[c],
                       ratio(metricOf(all[c], traffic), base_traffic));
    }

    speed.print(std::cout);
    traf.print(std::cout);
    return 0;
}
