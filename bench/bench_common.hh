/**
 * @file
 * Shared helpers for the per-figure bench binaries: run design points
 * over the Table II workload suite, compute normalized series, and
 * print paper-style tables with the paper's reference numbers quoted
 * alongside.
 */

#ifndef TEXPIM_BENCH_COMMON_HH
#define TEXPIM_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/stat_export.hh"
#include "sim/experiment.hh"

namespace texpim::bench {

/** Workload labels for table rows. */
inline std::vector<std::string>
workloadLabels(const SuiteOptions &opt)
{
    std::vector<std::string> out;
    for (const Workload &w : suiteWorkloads(opt))
        out.push_back(w.label());
    return out;
}

/** Extract a per-workload metric. */
inline std::vector<double>
metricOf(const std::vector<WorkloadResult> &rs,
         const std::function<double(const SimResult &)> &fn)
{
    std::vector<double> out;
    out.reserve(rs.size());
    for (const auto &r : rs)
        out.push_back(fn(r.result));
    return out;
}

/** Element-wise a[i] / b[i]. */
inline std::vector<double>
ratio(const std::vector<double> &a, const std::vector<double> &b)
{
    std::vector<double> out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = b[i] != 0.0 ? a[i] / b[i] : 0.0;
    return out;
}

inline void
printHeader(const char *experiment, const char *paper_result)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("paper: %s\n", paper_result);
    std::printf("==============================================================\n\n");
}

/** One named per-workload series for emitMetricsJson(). */
struct MetricSeries
{
    std::string name;
    std::vector<double> values;
};

/**
 * Emit a bench's table as machine-readable JSON:
 *
 *   { "schema": "texpim-bench-v1", "bench": "...",
 *     "workloads": [...], "series": { "<name>": [...], ... } }
 *
 * Writes to `path` when non-empty, else to the TEXPIM_METRICS_OUT
 * environment variable when set, else does nothing — so every bench
 * can call it unconditionally after printing its table.
 */
inline void
emitMetricsJson(const std::string &bench,
                const std::vector<std::string> &workloads,
                const std::vector<MetricSeries> &series,
                const std::string &path = "")
{
    std::string out = path;
    if (out.empty()) {
        const char *env = std::getenv("TEXPIM_METRICS_OUT");
        if (env == nullptr || *env == '\0')
            return;
        out = env;
    }
    JsonWriter w;
    w.beginObject();
    w.keyValue("schema", "texpim-bench-v1");
    w.keyValue("bench", bench);
    w.key("workloads").beginArray();
    for (const std::string &l : workloads)
        w.value(l);
    w.endArray();
    w.key("series").beginObject();
    for (const MetricSeries &s : series) {
        w.key(s.name).beginArray();
        for (double v : s.values)
            w.value(v);
        w.endArray();
    }
    w.endObject();
    w.endObject();
    writeTextFile(out, w.str());
    std::fprintf(stderr, "metrics: wrote %s\n", out.c_str());
}

} // namespace texpim::bench

#endif // TEXPIM_BENCH_COMMON_HH
