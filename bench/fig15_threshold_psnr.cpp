/**
 * @file
 * Fig. 15: image quality (PSNR of the A-TFIM frame against the
 * baseline frame) across the camera-angle thresholds. The paper's
 * convention reports 99 for identical images, and treats PSNR above
 * ~70 as visually lossless.
 */

#include "bench_common.hh"
#include "quality/image_metrics.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 15 - image quality (PSNR) vs angle threshold",
                "quality falls as the threshold loosens, with a "
                "pronounced drop between 0.01pi and 0.05pi");

    SimConfig base;
    base.design = Design::Baseline;
    auto b = runSuite(base, opt);

    struct Point
    {
        const char *name;
        float thr;
    };
    const Point points[] = {
        {"A-TFIM-0005pi", kThreshold0005Pi}, {"A-TFIM-001pi", kThreshold001Pi},
        {"A-TFIM-005pi", kThreshold005Pi},   {"A-TFIM-01pi", kThreshold01Pi},
        {"A-TFIM-no", kThresholdNoRecalc},
    };

    ResultTable table("PSNR vs baseline frame (dB)", workloadLabels(opt));

    // The paper notes the anisotropic-disabled ("only Isotropic")
    // configuration scores below even A-TFIM-no-recalculation.
    {
        SimConfig iso = base;
        iso.disableAniso = true;
        auto rs = runSuite(iso, opt);
        std::vector<double> col;
        for (size_t i = 0; i < rs.size(); ++i)
            col.push_back(psnr(*b[i].result.image, *rs[i].result.image));
        table.addColumn("Isotropic", col);
    }

    for (const Point &p : points) {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.angleThresholdRad = p.thr;
        auto rs = runSuite(cfg, opt);
        std::vector<double> col;
        for (size_t i = 0; i < rs.size(); ++i)
            col.push_back(psnr(*b[i].result.image, *rs[i].result.image));
        table.addColumn(p.name, col);
    }
    table.print(std::cout, 1);
    return 0;
}
