/**
 * @file
 * Fig. 14: A-TFIM 3D-rendering speedup across the camera-angle
 * thresholds of §VII-D (0.005 pi ... no recalculation).
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 14 - A-TFIM rendering speedup vs angle threshold",
                "speedup grows as the threshold loosens (~1.35x at "
                "0.005pi to ~1.47x at no-recalculation)");

    auto frame = [](const SimResult &r) {
        return double(r.frame.frameCycles);
    };

    struct Point
    {
        const char *name;
        float thr;
    };
    const Point points[] = {
        {"A-TFIM-0005pi", kThreshold0005Pi}, {"A-TFIM-001pi", kThreshold001Pi},
        {"A-TFIM-005pi", kThreshold005Pi},   {"A-TFIM-01pi", kThreshold01Pi},
        {"A-TFIM-no", kThresholdNoRecalc},
    };

    // One pool for the baseline plus every threshold point.
    std::vector<SimConfig> cfgs(1);
    cfgs[0].design = Design::Baseline;
    for (const Point &p : points) {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.angleThresholdRad = p.thr;
        cfgs.push_back(cfg);
    }

    auto all = runSuites(cfgs, opt);
    auto base_metric = metricOf(all[0], frame);

    ResultTable table("A-TFIM rendering speedup (x)", workloadLabels(opt));
    for (size_t c = 1; c < cfgs.size(); ++c)
        table.addColumn(points[c - 1].name,
                        ratio(base_metric, metricOf(all[c], frame)));
    table.print(std::cout);
    return 0;
}
