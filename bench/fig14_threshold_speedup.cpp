/**
 * @file
 * Fig. 14: A-TFIM 3D-rendering speedup across the camera-angle
 * thresholds of §VII-D (0.005 pi ... no recalculation).
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 14 - A-TFIM rendering speedup vs angle threshold",
                "speedup grows as the threshold loosens (~1.35x at "
                "0.005pi to ~1.47x at no-recalculation)");

    auto frame = [](const SimResult &r) {
        return double(r.frame.frameCycles);
    };

    SimConfig base;
    base.design = Design::Baseline;
    auto b = runSuite(base, opt);
    auto base_metric = metricOf(b, frame);

    struct Point
    {
        const char *name;
        float thr;
    };
    const Point points[] = {
        {"A-TFIM-0005pi", kThreshold0005Pi}, {"A-TFIM-001pi", kThreshold001Pi},
        {"A-TFIM-005pi", kThreshold005Pi},   {"A-TFIM-01pi", kThreshold01Pi},
        {"A-TFIM-no", kThresholdNoRecalc},
    };

    ResultTable table("A-TFIM rendering speedup (x)", workloadLabels(opt));
    for (const Point &p : points) {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.angleThresholdRad = p.thr;
        table.addColumn(p.name,
                        ratio(base_metric,
                              metricOf(runSuite(cfg, opt), frame)));
    }
    table.print(std::cout);
    return 0;
}
