/**
 * @file
 * Fig. 13: total GPU + memory energy per frame, normalized to the
 * baseline, under the four designs.
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 13 - normalized energy consumption",
                "A-TFIM consumes 22% less than baseline and 8% less "
                "than B-PIM; S-TFIM consumes more than B-PIM");

    auto energy = [](const SimResult &r) { return r.energy.total(); };

    SimConfig base;
    base.design = Design::Baseline;
    auto b = runSuite(base, opt);
    auto base_metric = metricOf(b, energy);

    ResultTable table("normalized energy", workloadLabels(opt));
    table.addColumn("Baseline", ratio(base_metric, base_metric));
    for (Design d : {Design::BPim, Design::STfim, Design::ATfim}) {
        SimConfig cfg;
        cfg.design = d;
        cfg.angleThresholdRad = kThreshold001Pi;
        auto r = runSuite(cfg, opt);
        std::string name = designName(d);
        if (d == Design::ATfim)
            name += "-001pi";
        table.addColumn(name, ratio(metricOf(r, energy), base_metric));
    }
    table.print(std::cout);
    return 0;
}
