/**
 * @file
 * Fig. 10: normalized texture-filtering speedup of the four designs
 * (Baseline, B-PIM, S-TFIM, A-TFIM at the default 0.01 pi camera-angle
 * threshold).
 *
 * The whole (design x workload) grid is submitted to one
 * ExperimentRunner pool (--jobs N / TEXPIM_JOBS), so the metrics JSON
 * is byte-identical whatever the worker count.
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader(
        "Fig. 10 - texture filtering speedup under the four designs",
        "A-TFIM 3.97x on average (up to 6.4x) over the baseline");

    auto filt = [](const SimResult &r) {
        return double(r.textureFilterCycles);
    };

    std::vector<std::string> names{"Baseline"};
    std::vector<SimConfig> cfgs(1);
    cfgs[0].design = Design::Baseline;
    for (Design d : {Design::BPim, Design::STfim, Design::ATfim}) {
        SimConfig cfg;
        cfg.design = d;
        cfg.angleThresholdRad = kThreshold001Pi;
        cfgs.push_back(cfg);
        std::string name = designName(d);
        if (d == Design::ATfim)
            name += "-001pi";
        names.push_back(name);
    }

    auto all = runSuites(cfgs, opt);
    auto base_metric = metricOf(all[0], filt);

    ResultTable table("texture filtering speedup (x)", workloadLabels(opt));
    std::vector<MetricSeries> series;
    table.addColumn("Baseline", ratio(base_metric, base_metric));
    series.push_back({"Baseline", ratio(base_metric, base_metric)});
    for (size_t c = 1; c < cfgs.size(); ++c) {
        auto speedup = ratio(base_metric, metricOf(all[c], filt));
        table.addColumn(names[c], speedup);
        series.push_back({names[c], speedup});
        // Fault/robustness accounting rides along for faulted sweeps
        // (all-zero series under the default fault-free config).
        series.push_back({names[c] + " hmc.link_retries",
                          metricOf(all[c], [](const SimResult &sr) {
                              return double(sr.linkRetries);
                          })});
        series.push_back({names[c] + " pim.fallbacks",
                          metricOf(all[c], [](const SimResult &sr) {
                              return double(sr.pimFallbacks);
                          })});
    }
    table.print(std::cout);
    emitMetricsJson("fig10_texture_speedup", workloadLabels(opt), series);
    return 0;
}
