/**
 * @file
 * Fig. 10: normalized texture-filtering speedup of the four designs
 * (Baseline, B-PIM, S-TFIM, A-TFIM at the default 0.01 pi camera-angle
 * threshold).
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader(
        "Fig. 10 - texture filtering speedup under the four designs",
        "A-TFIM 3.97x on average (up to 6.4x) over the baseline");

    auto filt = [](const SimResult &r) {
        return double(r.textureFilterCycles);
    };

    SimConfig base;
    base.design = Design::Baseline;
    auto b = runSuite(base, opt);
    auto base_metric = metricOf(b, filt);

    ResultTable table("texture filtering speedup (x)", workloadLabels(opt));
    std::vector<MetricSeries> series;
    table.addColumn("Baseline", ratio(base_metric, base_metric));
    series.push_back({"Baseline", ratio(base_metric, base_metric)});
    for (Design d : {Design::BPim, Design::STfim, Design::ATfim}) {
        SimConfig cfg;
        cfg.design = d;
        cfg.angleThresholdRad = kThreshold001Pi;
        auto r = runSuite(cfg, opt);
        std::string name = designName(d);
        if (d == Design::ATfim)
            name += "-001pi";
        auto speedup = ratio(base_metric, metricOf(r, filt));
        table.addColumn(name, speedup);
        series.push_back({name, speedup});
        // Fault/robustness accounting rides along for faulted sweeps
        // (all-zero series under the default fault-free config).
        series.push_back({name + " hmc.link_retries",
                          metricOf(r, [](const SimResult &sr) {
                              return double(sr.linkRetries);
                          })});
        series.push_back({name + " pim.fallbacks",
                          metricOf(r, [](const SimResult &sr) {
                              return double(sr.pimFallbacks);
                          })});
    }
    table.print(std::cout);
    emitMetricsJson("fig10_texture_speedup", workloadLabels(opt), series);
    return 0;
}
