/**
 * @file
 * Fig. 4: texture-filtering speedup and texture-memory-traffic
 * reduction when anisotropic filtering is disabled on the baseline
 * GPU — the observation that motivates moving anisotropic filtering
 * into memory.
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 4 - baseline with anisotropic filtering disabled",
                "texture filtering speeds up (avg ~2.1x, up to ~5x); "
                "texture traffic drops 34% on average (up to 73%)");

    SimConfig base;
    base.design = Design::Baseline;
    auto with_aniso = runSuite(base, opt);

    SimConfig no_aniso = base;
    no_aniso.disableAniso = true;
    auto without = runSuite(no_aniso, opt);

    auto filt = [](const SimResult &r) {
        return double(r.textureFilterCycles);
    };
    auto traffic = [](const SimResult &r) {
        return double(r.textureTrafficBytes);
    };

    ResultTable table("anisotropic filtering disabled vs enabled",
                      workloadLabels(opt));
    table.addColumn("texfilter_speedup",
                    ratio(metricOf(with_aniso, filt),
                          metricOf(without, filt)));
    table.addColumn("norm_tex_traffic",
                    ratio(metricOf(without, traffic),
                          metricOf(with_aniso, traffic)));
    table.addColumn("render_speedup",
                    ratio(metricOf(with_aniso,
                                   [](const SimResult &r) {
                                       return double(r.frame.frameCycles);
                                   }),
                          metricOf(without, [](const SimResult &r) {
                              return double(r.frame.frameCycles);
                          })));
    table.print(std::cout);
    return 0;
}
