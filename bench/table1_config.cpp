/**
 * @file
 * Table I: the simulator configuration for every design point, printed
 * in the paper's layout so the reproduction's parameters are auditable
 * at a glance.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace texpim;

int
main()
{
    SimConfig cfg;
    const GpuParams &g = cfg.gpu;

    std::printf("TABLE I. SIMULATOR CONFIGURATION (reproduction)\n\n");
    std::printf("Host GPU\n");
    std::printf("  %-34s %u\n", "Number of cluster", g.clusters);
    std::printf("  %-34s %u\n", "Unified shader per cluster",
                g.shadersPerCluster);
    std::printf("  %-34s simd4-scale ALUs, %ux%u tile size\n",
                "Unified shader configuration", g.tileSize, g.tileSize);
    std::printf("  %-34s %.0f GHz\n", "GPU frequency", g.frequencyGHz);
    std::printf("  %-34s %u baseline / 0 S-TFIM / %u A-TFIM\n",
                "Number of GPU texture units", g.clusters, g.clusters);
    std::printf("  %-34s %u address ALUs, %u filtering ALUs\n",
                "Texture unit configuration", g.texAddressAlus,
                g.texFilterAlus);
    std::printf("  %-34s %llu KB, %u-way\n", "Texture L1 cache",
                (unsigned long long)(g.texL1.sizeBytes / 1024), g.texL1.ways);
    std::printf("  %-34s %llu KB, %u-way\n", "Texture L2 cache",
                (unsigned long long)(g.texL2.sizeBytes / 1024), g.texL2.ways);

    std::printf("\nMemory\n");
    std::printf("  %-34s %.0f GB/s GDDR5 / %.0f GB/s HMC external\n",
                "Off-chip bandwidth", cfg.gddr5.totalBandwidthGBs,
                cfg.hmc.externalBandwidthGBs);
    std::printf("  %-34s %u vaults, %u banks/vault, %llu-cycle TSV\n",
                "HMC configuration", cfg.hmc.vaults, cfg.hmc.banksPerVault,
                (unsigned long long)cfg.hmc.tsvLatency);
    std::printf("  %-34s %.0f GB/s\n", "HMC internal bandwidth",
                cfg.hmc.internalBandwidthGBs);

    std::printf("\nS-TFIM\n");
    std::printf("  %-34s %u (one private MTU per cluster)\n",
                "Number of MTU", g.clusters);
    std::printf("  %-34s %u address ALUs, %u filtering ALUs, %u-entry "
                "request queue\n",
                "MTU configuration", cfg.mtu.addressAlus,
                cfg.mtu.filterAlus, cfg.mtu.requestQueueEntries);

    std::printf("\nA-TFIM\n");
    std::printf("  %-34s %u address ALUs\n", "Texel Generator",
                cfg.atfim.texelGeneratorAlus);
    std::printf("  %-34s %u filtering ALUs\n", "Combination Unit",
                cfg.atfim.combinationAlus);
    std::printf("  %-34s %u entries\n", "Parent Texel Buffer",
                cfg.atfim.parentTexelBufferEntries);
    std::printf("  %-34s 0.01 pi (1.8 degrees) default\n",
                "Camera-angle threshold");
    return 0;
}
