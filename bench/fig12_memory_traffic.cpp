/**
 * @file
 * Fig. 12: texture memory traffic between the host GPU and the memory
 * device (texel fetches plus PIM packages), normalized to the
 * baseline, for B-PIM, S-TFIM and A-TFIM at the 0.01 pi and 0.05 pi
 * camera-angle thresholds.
 *
 * All five (design x workload) suites run on one ExperimentRunner
 * pool (--jobs N / TEXPIM_JOBS).
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 12 - off-chip texture memory traffic (normalized)",
                "S-TFIM 2.79x baseline on average; A-TFIM-001pi ~1x; "
                "A-TFIM-005pi 0.72x (down to 0.36x)");

    auto traffic = [](const SimResult &r) {
        return double(r.textureTrafficBytes);
    };

    std::vector<std::string> names{"Baseline", "B-PIM", "S-TFIM"};
    std::vector<SimConfig> cfgs(3);
    cfgs[0].design = Design::Baseline;
    cfgs[1].design = Design::BPim;
    cfgs[2].design = Design::STfim;
    for (float thr : {kThreshold001Pi, kThreshold005Pi}) {
        SimConfig atfim;
        atfim.design = Design::ATfim;
        atfim.angleThresholdRad = thr;
        cfgs.push_back(atfim);
        names.push_back(thr == kThreshold001Pi ? "A-TFIM-001pi"
                                               : "A-TFIM-005pi");
    }

    auto all = runSuites(cfgs, opt);
    auto base_metric = metricOf(all[0], traffic);

    ResultTable table("normalized texture traffic", workloadLabels(opt));
    for (size_t c = 0; c < cfgs.size(); ++c)
        table.addColumn(names[c],
                        ratio(metricOf(all[c], traffic), base_metric));
    table.print(std::cout);
    return 0;
}
