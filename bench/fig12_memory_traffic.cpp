/**
 * @file
 * Fig. 12: texture memory traffic between the host GPU and the memory
 * device (texel fetches plus PIM packages), normalized to the
 * baseline, for B-PIM, S-TFIM and A-TFIM at the 0.01 pi and 0.05 pi
 * camera-angle thresholds.
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 12 - off-chip texture memory traffic (normalized)",
                "S-TFIM 2.79x baseline on average; A-TFIM-001pi ~1x; "
                "A-TFIM-005pi 0.72x (down to 0.36x)");

    auto traffic = [](const SimResult &r) {
        return double(r.textureTrafficBytes);
    };

    SimConfig base;
    base.design = Design::Baseline;
    auto b = runSuite(base, opt);
    auto base_metric = metricOf(b, traffic);

    ResultTable table("normalized texture traffic", workloadLabels(opt));
    table.addColumn("Baseline", ratio(base_metric, base_metric));

    SimConfig bpim;
    bpim.design = Design::BPim;
    table.addColumn("B-PIM",
                    ratio(metricOf(runSuite(bpim, opt), traffic),
                          base_metric));

    SimConfig stfim;
    stfim.design = Design::STfim;
    table.addColumn("S-TFIM",
                    ratio(metricOf(runSuite(stfim, opt), traffic),
                          base_metric));

    for (float thr : {kThreshold001Pi, kThreshold005Pi}) {
        SimConfig atfim;
        atfim.design = Design::ATfim;
        atfim.angleThresholdRad = thr;
        std::string name = thr == kThreshold001Pi ? "A-TFIM-001pi"
                                                  : "A-TFIM-005pi";
        table.addColumn(name,
                        ratio(metricOf(runSuite(atfim, opt), traffic),
                              base_metric));
    }
    table.print(std::cout);
    return 0;
}
