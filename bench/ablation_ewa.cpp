/**
 * @file
 * Filter-quality ablation against an EWA reference.
 *
 * The paper's Eq. (3) reordering requires equal-weight anisotropic
 * averaging, while the EWA algorithm it cites [31] weights footprint
 * samples by a Gaussian. This bench renders the baseline with the EWA
 * reference filter and reports how far (PSNR) both the reorderable box
 * filter and the full A-TFIM pipeline sit from it — the quality the
 * reordering trades away before the camera-angle approximation even
 * starts.
 */

#include "bench_common.hh"
#include "quality/image_metrics.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Ablation - box-anisotropic vs EWA reference",
                "the reorderable equal-weight filter tracks the EWA "
                "reference closely; A-TFIM adds only the angle-reuse "
                "error on top");

    std::printf("%-22s %14s %14s\n", "workload", "box vs EWA",
                "A-TFIM vs EWA");
    std::vector<double> box_q, atfim_q;
    for (const Workload &wl : suiteWorkloads(opt)) {
        Scene scene = buildGameScene(wl, opt.frame, opt.seed);
        scene.settings.maxAniso =
            defaultMaxAniso(wl.width * opt.resolutionDivisor);

        Scene ewa_scene = scene;
        ewa_scene.settings.filterMode = FilterMode::TrilinearEwa;

        SimConfig base_cfg;
        base_cfg.design = Design::Baseline;
        RenderingSimulator ewa_sim(base_cfg);
        SimResult ewa = ewa_sim.renderScene(ewa_scene);

        RenderingSimulator box_sim(base_cfg);
        SimResult box = box_sim.renderScene(scene);

        SimConfig atfim_cfg;
        atfim_cfg.design = Design::ATfim;
        RenderingSimulator atfim_sim(atfim_cfg);
        SimResult atfim = atfim_sim.renderScene(scene);

        double qb = psnr(*ewa.image, *box.image);
        double qa = psnr(*ewa.image, *atfim.image);
        box_q.push_back(qb);
        atfim_q.push_back(qa);
        std::printf("%-22s %12.1f %14.1f\n", wl.label().c_str(), qb, qa);
    }
    std::printf("%-22s %12.1f %14.1f\n", "average", mean(box_q),
                mean(atfim_q));
    return 0;
}
