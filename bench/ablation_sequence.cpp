/**
 * @file
 * Multi-frame fly-through study (§V-C's inter-frame case): render 8
 * consecutive frames per workload with warm caches and report how
 * A-TFIM's recalculation rate, traffic and quality evolve as the
 * camera moves — the regime the paper's captured traces live in, which
 * single cold frames cannot show.
 */

#include "bench_common.hh"
#include "quality/image_metrics.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fly-through - A-TFIM across consecutive frames",
                "SV-C: same parent texel address, different camera "
                "angle across frames drives recalculation");

    // A representative mid-size workload per game.
    const Workload wls[] = {
        {Game::Doom3, 640, 480},   {Game::Fear, 640, 480},
        {Game::HalfLife2, 640, 480}, {Game::Riddick, 640, 480},
        {Game::Wolfenstein, 640, 480},
    };
    constexpr unsigned kFrames = 8;

    for (const Workload &wl : wls) {
        // Warm baseline sequence for reference images and cycles.
        SimConfig base_cfg;
        base_cfg.design = Design::Baseline;
        RenderingSimulator base_sim(base_cfg);
        auto base = base_sim.renderSequence(wl, kFrames, opt.frame,
                                            opt.seed);

        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.angleThresholdRad = kThreshold001Pi;
        RenderingSimulator sim(cfg);
        auto frames = sim.renderSequence(wl, kFrames, opt.frame, opt.seed);

        std::printf("%s (A-TFIM-001pi, warm):\n", wl.label().c_str());
        std::printf("  %-7s %10s %12s %10s %8s\n", "frame", "speedup",
                    "recalcs", "tex MB", "PSNR");
        for (unsigned f = 0; f < kFrames; ++f) {
            double sp = double(base[f].frame.frameCycles) /
                        double(frames[f].frame.frameCycles);
            std::printf("  %-7u %9.2fx %12llu %10.2f %8.1f\n", f, sp,
                        (unsigned long long)frames[f].angleRecalcs,
                        double(frames[f].textureTrafficBytes) / 1e6,
                        psnr(*base[f].image, *frames[f].image));
        }
        std::printf("\n");
    }
    return 0;
}
