/**
 * @file
 * Fig. 16: the performance-quality trade-off — suite-average A-TFIM
 * rendering speedup and PSNR per camera-angle threshold, the curve
 * used to justify 0.01 pi as the default operating point.
 */

#include "bench_common.hh"
#include "quality/image_metrics.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 16 - performance-quality trade-off (suite average)",
                "smaller thresholds raise quality and cost speedup; "
                "0.01pi is the paper's chosen operating point");

    auto frame = [](const SimResult &r) {
        return double(r.frame.frameCycles);
    };

    SimConfig base;
    base.design = Design::Baseline;
    auto b = runSuite(base, opt);
    auto base_metric = metricOf(b, frame);

    struct Point
    {
        const char *name;
        float thr;
    };
    const Point points[] = {
        {"A-TFIM-0005pi", kThreshold0005Pi}, {"A-TFIM-001pi", kThreshold001Pi},
        {"A-TFIM-005pi", kThreshold005Pi},   {"A-TFIM-01pi", kThreshold01Pi},
        {"A-TFIM-no", kThresholdNoRecalc},
    };

    std::printf("%-16s %12s %10s %14s\n", "config", "speedup", "PSNR",
                "recalcs/frame");
    for (const Point &p : points) {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.angleThresholdRad = p.thr;
        auto rs = runSuite(cfg, opt);

        std::vector<double> speedups =
            ratio(base_metric, metricOf(rs, frame));
        std::vector<double> quality;
        double recalcs = 0.0;
        for (size_t i = 0; i < rs.size(); ++i) {
            quality.push_back(psnr(*b[i].result.image, *rs[i].result.image));
            recalcs += double(rs[i].result.angleRecalcs);
        }
        std::printf("%-16s %11.2fx %10.1f %14.0f\n", p.name,
                    mean(speedups), mean(quality),
                    recalcs / double(rs.size()));
    }
    return 0;
}
