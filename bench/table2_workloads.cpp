/**
 * @file
 * Table II: the gaming benchmarks — five titles across the paper's
 * resolutions, with the workload statistics our procedural profiles
 * produce (triangles, textures, default anisotropy).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace texpim;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);

    std::printf("TABLE II. GAMING BENCHMARKS (procedural stand-ins)\n\n");
    std::printf("%-22s %-9s %-16s %6s %9s %7s %9s\n", "name", "library",
                "3D engine", "tris", "textures", "aniso", "tex MB");
    for (const Workload &wl : suiteWorkloads(opt)) {
        Scene s = buildGameScene(wl, opt.frame, opt.seed);
        std::printf("%-22s %-9s %-16s %6u %9u %6ux %9.1f\n",
                    wl.label().c_str(), gameLibrary(wl.game),
                    gameEngine(wl.game), s.triangleCount(),
                    s.textures->count(), s.settings.maxAniso,
                    double(s.textures->totalBytes()) / 1e6);
    }
    return 0;
}
