/**
 * @file
 * Fig. 5: speedup of overall 3D rendering and of texture filtering
 * when the GDDR5 memory is replaced by an HMC (B-PIM), with no other
 * architectural change.
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 5 - B-PIM (HMC as drop-in memory) vs baseline",
                "3D rendering +27% on average (up to 30%); texture "
                "filtering up to ~1.7x");

    SimConfig base;
    base.design = Design::Baseline;
    auto b = runSuite(base, opt);

    SimConfig bpim;
    bpim.design = Design::BPim;
    auto p = runSuite(bpim, opt);

    auto frame = [](const SimResult &r) {
        return double(r.frame.frameCycles);
    };
    auto filt = [](const SimResult &r) {
        return double(r.textureFilterCycles);
    };

    ResultTable table("B-PIM speedups over baseline", workloadLabels(opt));
    table.addColumn("render_speedup",
                    ratio(metricOf(b, frame), metricOf(p, frame)));
    table.addColumn("texfilter_speedup",
                    ratio(metricOf(b, filt), metricOf(p, filt)));
    table.print(std::cout);
    return 0;
}
