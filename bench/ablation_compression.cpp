/**
 * @file
 * Texture-compression ablation: the paper positions its PIM designs as
 * orthogonal to texture compression (§VIII). This bench quantifies
 * that claim: BC1 storage cuts texture traffic for *every* design, and
 * A-TFIM's advantage over the baseline survives compression.
 */

#include "bench_common.hh"
#include "quality/image_metrics.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Ablation - BC1 texture compression x PIM designs",
                "compression and in-memory anisotropic filtering are "
                "orthogonal: both cut texture traffic, and they compose");

    auto frame = [](const SimResult &r) {
        return double(r.frame.frameCycles);
    };
    auto traffic = [](const SimResult &r) {
        return double(r.textureTrafficBytes);
    };

    ResultTable speed("rendering speedup vs uncompressed baseline (x)",
                      workloadLabels(opt));
    ResultTable traf("texture traffic vs uncompressed baseline",
                     workloadLabels(opt));

    std::vector<double> base_frame, base_traffic;
    std::vector<double> psnr_bc1;

    // Reference: uncompressed baseline.
    std::vector<WorkloadResult> base;
    {
        SimConfig cfg;
        cfg.design = Design::Baseline;
        base = runSuite(cfg, opt);
        base_frame = metricOf(base, frame);
        base_traffic = metricOf(base, traffic);
    }

    struct Cell
    {
        const char *name;
        Design design;
        bool compress;
    };
    // The full {off, BC1} x design grid (the uncompressed baseline is
    // the reference column above): compression must compose with every
    // design, not just the endpoints.
    const Cell cells[] = {
        {"base+BC1", Design::Baseline, true},
        {"B-PIM", Design::BPim, false},
        {"B-PIM+BC1", Design::BPim, true},
        {"S-TFIM", Design::STfim, false},
        {"S-TFIM+BC1", Design::STfim, true},
        {"A-TFIM", Design::ATfim, false},
        {"A-TFIM+BC1", Design::ATfim, true},
    };

    for (const Cell &c : cells) {
        SimConfig cfg;
        cfg.design = c.design;
        std::vector<double> fr, tr;
        for (const Workload &wl : suiteWorkloads(opt)) {
            Scene scene = buildGameScene(wl, opt.frame, opt.seed);
            scene.settings.maxAniso =
                defaultMaxAniso(wl.width * opt.resolutionDivisor);
            if (c.compress)
                scene = withTextureFormat(scene, TexelFormat::Bc1);
            RenderingSimulator sim(cfg);
            SimResult r = sim.renderScene(scene);
            fr.push_back(double(r.frame.frameCycles));
            tr.push_back(double(r.textureTrafficBytes));
        }
        speed.addColumn(c.name, ratio(base_frame, fr));
        traf.addColumn(c.name, ratio(tr, base_traffic));
    }

    speed.print(std::cout);
    traf.print(std::cout);

    // BC1's image cost against the uncompressed baseline frame, one
    // representative workload.
    {
        Workload wl = suiteWorkloads(opt)[1]; // doom3 at mid resolution
        Scene scene = buildGameScene(wl, opt.frame, opt.seed);
        Scene bc1 = withTextureFormat(scene, TexelFormat::Bc1);
        SimConfig cfg;
        cfg.design = Design::Baseline;
        RenderingSimulator a(cfg), b(cfg);
        SimResult ra = a.renderScene(scene);
        SimResult rb = b.renderScene(bc1);
        std::printf("BC1 image cost on %s: PSNR %.1f dB vs uncompressed\n",
                    wl.label().c_str(), psnr(*ra.image, *rb.image));
    }
    return 0;
}
