/**
 * @file
 * Fig. 11: normalized overall 3D-rendering speedup of the four
 * designs.
 *
 * The whole (design x workload) grid is submitted to one
 * ExperimentRunner pool (--jobs N / TEXPIM_JOBS), so the metrics JSON
 * is byte-identical whatever the worker count.
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 11 - 3D rendering speedup under the four designs",
                "A-TFIM +43% on average (up to 65%); S-TFIM ~ B-PIM in "
                "the paper (ours lands below baseline - see "
                "EXPERIMENTS.md)");

    auto frame = [](const SimResult &r) {
        return double(r.frame.frameCycles);
    };

    std::vector<std::string> names{"Baseline"};
    std::vector<SimConfig> cfgs(1);
    cfgs[0].design = Design::Baseline;
    for (Design d : {Design::BPim, Design::STfim, Design::ATfim}) {
        SimConfig cfg;
        cfg.design = d;
        cfg.angleThresholdRad = kThreshold001Pi;
        cfgs.push_back(cfg);
        std::string name = designName(d);
        if (d == Design::ATfim)
            name += "-001pi";
        names.push_back(name);
    }

    auto all = runSuites(cfgs, opt);
    auto base_metric = metricOf(all[0], frame);

    ResultTable table("3D rendering speedup (x)", workloadLabels(opt));
    std::vector<MetricSeries> series;
    table.addColumn("Baseline", ratio(base_metric, base_metric));
    series.push_back({"Baseline", ratio(base_metric, base_metric)});
    for (size_t c = 1; c < cfgs.size(); ++c) {
        auto speedup = ratio(base_metric, metricOf(all[c], frame));
        table.addColumn(names[c], speedup);
        series.push_back({names[c], speedup});
        // Fault/robustness accounting rides along for faulted sweeps
        // (all-zero series under the default fault-free config).
        series.push_back({names[c] + " hmc.link_retries",
                          metricOf(all[c], [](const SimResult &sr) {
                              return double(sr.linkRetries);
                          })});
        series.push_back({names[c] + " pim.fallbacks",
                          metricOf(all[c], [](const SimResult &sr) {
                              return double(sr.pimFallbacks);
                          })});
    }
    table.print(std::cout);
    emitMetricsJson("fig11_rendering_speedup", workloadLabels(opt), series);
    return 0;
}
