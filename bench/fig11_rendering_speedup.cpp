/**
 * @file
 * Fig. 11: normalized overall 3D-rendering speedup of the four
 * designs.
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Fig. 11 - 3D rendering speedup under the four designs",
                "A-TFIM +43% on average (up to 65%); S-TFIM ~ B-PIM in "
                "the paper (ours lands below baseline - see "
                "EXPERIMENTS.md)");

    auto frame = [](const SimResult &r) {
        return double(r.frame.frameCycles);
    };

    SimConfig base;
    base.design = Design::Baseline;
    auto b = runSuite(base, opt);
    auto base_metric = metricOf(b, frame);

    ResultTable table("3D rendering speedup (x)", workloadLabels(opt));
    std::vector<MetricSeries> series;
    table.addColumn("Baseline", ratio(base_metric, base_metric));
    series.push_back({"Baseline", ratio(base_metric, base_metric)});
    for (Design d : {Design::BPim, Design::STfim, Design::ATfim}) {
        SimConfig cfg;
        cfg.design = d;
        cfg.angleThresholdRad = kThreshold001Pi;
        auto r = runSuite(cfg, opt);
        std::string name = designName(d);
        if (d == Design::ATfim)
            name += "-001pi";
        auto speedup = ratio(base_metric, metricOf(r, frame));
        table.addColumn(name, speedup);
        series.push_back({name, speedup});
        // Fault/robustness accounting rides along for faulted sweeps
        // (all-zero series under the default fault-free config).
        series.push_back({name + " hmc.link_retries",
                          metricOf(r, [](const SimResult &sr) {
                              return double(sr.linkRetries);
                          })});
        series.push_back({name + " pim.fallbacks",
                          metricOf(r, [](const SimResult &sr) {
                              return double(sr.pimFallbacks);
                          })});
    }
    table.print(std::cout);
    emitMetricsJson("fig11_rendering_speedup", workloadLabels(opt), series);
    return 0;
}
