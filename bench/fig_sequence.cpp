/**
 * @file
 * Camera-path sequence figure: frame-to-frame texel-block reuse and
 * the prefetch-aware tile schedule. The paper's inter-frame argument
 * (§V-C) is usually shown through A-TFIM recalculations
 * (bench/ablation_sequence); this bench shows the substrate those
 * ride on — how much of each frame's texel working set the previous
 * frame already touched, how much of it the tag caches actually
 * retain, and what reordering tile issue toward first-use blocks
 * (gpu.schedule=prefetch) does to the cycle count.
 */

#include "bench_common.hh"

using namespace texpim;
using namespace texpim::bench;

int
main(int argc, char **argv)
{
    SuiteOptions opt = parseSuiteArgs(argc, argv);
    printHeader("Sequence - inter-frame reuse and prefetch schedule",
                "consecutive frames share most of their texel working "
                "set; schedules can exploit the recorded footprints");

    const Workload wl{Game::Doom3, 640, 480};
    constexpr unsigned kFrames = 8;

    // --- Reuse profile per design -----------------------------------
    const Design designs[] = {Design::Baseline, Design::BPim,
                              Design::STfim, Design::ATfim};
    std::printf("%s, %u frames, warm:\n", wl.label().c_str(), kFrames);
    std::printf("  %-10s %14s %12s %14s\n", "design", "uniq blocks/f",
                "reused %", "tag hits");
    for (Design d : designs) {
        SimConfig cfg;
        cfg.design = d;
        RenderingSimulator sim(cfg);
        auto frames = sim.renderSequence(wl, kFrames, opt.frame, opt.seed);
        u64 uniq = 0, reused = 0, hits = 0;
        for (const SimResult &f : frames) {
            uniq += f.seqUniqueBlocks;
            reused += f.seqBlocksReusedPrev;
            hits += f.interFrameTagHits;
        }
        // Frame 0 has no predecessor; the reuse fraction is over the
        // frames that do.
        u64 uniq_tail = uniq - frames[0].seqUniqueBlocks;
        std::printf("  %-10s %14.0f %11.1f%% %14llu\n", designName(d),
                    double(uniq) / kFrames,
                    uniq_tail ? 100.0 * double(reused) / double(uniq_tail)
                              : 0.0,
                    (unsigned long long)hits);
    }

    // --- Per-frame detail (baseline) --------------------------------
    {
        SimConfig cfg;
        cfg.design = Design::Baseline;
        RenderingSimulator sim(cfg);
        auto frames = sim.renderSequence(wl, kFrames, opt.frame, opt.seed);
        std::printf("\n  baseline per frame:\n");
        std::printf("  %-7s %12s %12s %10s\n", "frame", "uniq blocks",
                    "reused", "tag hits");
        for (unsigned f = 0; f < kFrames; ++f)
            std::printf("  %-7u %12llu %12llu %10llu\n", f,
                        (unsigned long long)frames[f].seqUniqueBlocks,
                        (unsigned long long)frames[f].seqBlocksReusedPrev,
                        (unsigned long long)frames[f].interFrameTagHits);
    }

    // --- Tile-issue schedules ---------------------------------------
    // Prefetch rides on the pinned round-robin arm, so round-robin is
    // its fair reference; the timing-fed horizon schedule is the
    // default the rest of the repo reports.
    struct Sched
    {
        const char *name;
        GpuParams::Schedule schedule;
    };
    const Sched scheds[] = {
        {"horizon", GpuParams::Schedule::Horizon},
        {"rr", GpuParams::Schedule::RoundRobin},
        {"prefetch", GpuParams::Schedule::Prefetch},
    };
    std::printf("\n  baseline tile-issue schedule, total cycles over %u "
                "frames:\n",
                kFrames);
    double rr_total = 0.0;
    for (const Sched &s : scheds) {
        SimConfig cfg;
        cfg.design = Design::Baseline;
        cfg.gpu.schedule = s.schedule;
        RenderingSimulator sim(cfg);
        auto frames = sim.renderSequence(wl, kFrames, opt.frame, opt.seed);
        double total = 0.0;
        for (const SimResult &f : frames)
            total += double(f.frame.frameCycles);
        if (s.schedule == GpuParams::Schedule::RoundRobin)
            rr_total = total;
        if (s.schedule == GpuParams::Schedule::Prefetch && rr_total > 0.0)
            std::printf("  %-10s %14.0f  (%+.2f%% vs rr)\n", s.name,
                        total, 100.0 * (total - rr_total) / rr_total);
        else
            std::printf("  %-10s %14.0f\n", s.name, total);
    }
    return 0;
}
