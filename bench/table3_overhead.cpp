/**
 * @file
 * §VII-E: design-overhead analysis — storage and logic area added by
 * A-TFIM on the HMC logic layer and on the host GPU, via the
 * CACTI-lite area model at 28 nm.
 */

#include <cstdio>

#include "bench_common.hh"
#include "power/area_model.hh"

using namespace texpim;

int
main()
{
    SimConfig cfg;
    AreaParams area;

    // Parent Texel Buffer entry: 8-bit parent id + 32-bit value +
    // 1 done bit + 4-bit child count = 45 bits (§VII-E).
    AtfimOverhead o = computeAtfimOverhead(
        area, cfg.atfim.parentTexelBufferEntries, 45, 256, 16, cfg.gpu.texL1,
        cfg.gpu.texL2, cfg.gpu.clusters);

    std::printf("SVII-E. A-TFIM DESIGN OVERHEAD (28 nm)\n\n");
    std::printf("HMC logic layer\n");
    std::printf("  %-38s %.2f KB\n", "Parent Texel Buffer (paper: 1.41 KB)",
                o.parentTexelBufferKB);
    std::printf("  %-38s %.2f KB\n",
                "Child Texel Consolidation (paper: 0.5 KB)",
                o.consolidationBufferKB);
    std::printf("  %-38s %.2f mm^2\n", "storage area (paper: 1.12 mm^2)",
                o.hmcStorageMm2);
    std::printf("  %-38s %.2f mm^2\n", "logic units (paper: 6.09 mm^2)",
                o.hmcLogicMm2);
    std::printf("  %-38s %.2f%% of an 8 Gb die (paper: 3.18%%)\n",
                "total overhead", 100.0 * o.hmcFractionOfDie);

    std::printf("\nHost GPU\n");
    std::printf("  %-38s %.2f KB (paper: 0.21 KB)\n",
                "angle bits per L1 cache", o.l1AngleKBPerCache);
    std::printf("  %-38s %.2f KB (paper: 1.75 KB)\n", "angle bits in L2",
                o.l2AngleKB);
    std::printf("  %-38s %.2f KB (paper: 4.2 KB)\n", "total storage",
                o.gpuStorageKB);
    std::printf("  %-38s %.2f mm^2, %.2f%% of the GPU die "
                "(paper: 0.31 mm^2, 0.23%%)\n",
                "area", o.gpuAreaMm2, 100.0 * o.gpuFractionOfDie);
    return 0;
}
