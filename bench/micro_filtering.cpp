/**
 * @file
 * google-benchmark micro-benchmarks of the functional filtering
 * kernels: conventional bilinear / trilinear / anisotropic sampling
 * and the A-TFIM decomposition, across anisotropy levels.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "tex/sampler.hh"

using namespace texpim;

namespace {

Texture &
testTexture()
{
    static Texture tex = [] {
        Rng rng(42);
        TextureImage img(512, 512);
        for (unsigned y = 0; y < 512; ++y)
            for (unsigned x = 0; x < 512; ++x)
                img.setTexel(x, y, Rgba8{u8(rng.below(256)),
                                         u8(rng.below(256)),
                                         u8(rng.below(256)), 255});
        return Texture("bench", std::move(img), 0x1000'0000);
    }();
    return tex;
}

SampleCoords
coordsForAniso(Rng &rng, unsigned aniso)
{
    SampleCoords c;
    c.uv = {float(rng.uniform()), float(rng.uniform())};
    float minor = 2.0f / 512.0f;
    c.ddx = {minor * float(aniso), 0.0f};
    c.ddy = {0.0f, minor};
    return c;
}

void
BM_SampleConventional(benchmark::State &state)
{
    unsigned aniso = unsigned(state.range(0));
    Texture &tex = testTexture();
    Rng rng(7);
    SampleResult out;
    for (auto _ : state) {
        SampleCoords c = coordsForAniso(rng, aniso);
        sampleConventional(tex, c, FilterMode::Trilinear, 16, out);
        benchmark::DoNotOptimize(out.color);
    }
    state.SetItemsProcessed(i64(state.iterations()));
}

void
BM_SampleDecomposed(benchmark::State &state)
{
    unsigned aniso = unsigned(state.range(0));
    Texture &tex = testTexture();
    Rng rng(7);
    DecomposedSampleResult out;
    for (auto _ : state) {
        SampleCoords c = coordsForAniso(rng, aniso);
        sampleDecomposed(tex, c, FilterMode::Trilinear, 16, out);
        benchmark::DoNotOptimize(out.color);
    }
    state.SetItemsProcessed(i64(state.iterations()));
}

void
BM_ComputeLod(benchmark::State &state)
{
    Texture &tex = testTexture();
    Rng rng(7);
    for (auto _ : state) {
        SampleCoords c = coordsForAniso(rng, 8);
        LodInfo lod = computeLod(tex, c, 16);
        benchmark::DoNotOptimize(lod);
    }
}

void
BM_MipChainGeneration(benchmark::State &state)
{
    unsigned size = unsigned(state.range(0));
    Rng rng(3);
    TextureImage img(size, size);
    for (unsigned y = 0; y < size; ++y)
        for (unsigned x = 0; x < size; ++x)
            img.setTexel(x, y, Rgba8{u8(rng.below(256)), 0, 0, 255});
    for (auto _ : state) {
        Texture t("mips", img, 0);
        benchmark::DoNotOptimize(t.levels());
    }
}

} // namespace

BENCHMARK(BM_SampleConventional)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_SampleDecomposed)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_ComputeLod);
BENCHMARK(BM_MipChainGeneration)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
