/**
 * @file
 * Record/replay: capture a game workload into a binary render trace
 * (the reproduction's stand-in for the paper's captured ATTILA
 * OpenGL/D3D traces), then replay it through the simulator and verify
 * the replayed frame is bit-identical to rendering the live scene.
 *
 * Usage: record_replay [game] [WxH] [trace-path]
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "quality/image_metrics.hh"
#include "scene/trace.hh"
#include "sim/simulator.hh"

using namespace texpim;

int
main(int argc, char **argv)
{
    Workload wl{Game::Wolfenstein, 320, 240};
    std::string path = "workload.texpim";
    if (argc > 1) {
        std::string g = argv[1];
        if (g == "doom3")
            wl.game = Game::Doom3;
        else if (g == "fear")
            wl.game = Game::Fear;
        else if (g == "hl2")
            wl.game = Game::HalfLife2;
        else if (g == "riddick")
            wl.game = Game::Riddick;
        else if (g == "wolfenstein")
            wl.game = Game::Wolfenstein;
        else
            TEXPIM_FATAL("unknown game '", g, "'");
    }
    if (argc > 2 &&
        std::sscanf(argv[2], "%ux%u", &wl.width, &wl.height) != 2)
        TEXPIM_FATAL("bad resolution '", argv[2], "'");
    if (argc > 3)
        path = argv[3];

    // Record.
    Scene live = buildGameScene(wl, 3);
    writeTraceFile(live, path);
    std::printf("recorded %s: %u objects, %u textures -> %s\n",
                live.name.c_str(), unsigned(live.objects.size()),
                live.textures->count(), path.c_str());

    // Replay.
    Scene replayed = readTraceFile(path);
    std::printf("replayed %s: %u triangles\n", replayed.name.c_str(),
                replayed.triangleCount());

    SimConfig cfg;
    cfg.design = Design::Baseline;

    RenderingSimulator sim_live(cfg);
    SimResult a = sim_live.renderScene(live);
    RenderingSimulator sim_replay(cfg);
    SimResult b = sim_replay.renderScene(replayed);

    u64 diff = differingPixels(*a.image, *b.image);
    std::printf("live frame:     %llu cycles, %llu off-chip bytes\n",
                (unsigned long long)a.frame.frameCycles,
                (unsigned long long)a.offChipTotalBytes);
    std::printf("replayed frame: %llu cycles, %llu off-chip bytes\n",
                (unsigned long long)b.frame.frameCycles,
                (unsigned long long)b.offChipTotalBytes);
    std::printf("pixel differences: %llu %s\n", (unsigned long long)diff,
                diff == 0 ? "(bit-identical, as required)"
                          : "(MISMATCH - trace replay is broken!)");
    return diff == 0 ? 0 : 1;
}
