/**
 * @file
 * Traffic explorer: dissect where a workload's memory traffic and
 * cycles go under any design point — the Fig. 2-style bandwidth
 * breakdown, cache hit rates, bus utilization and texture-path
 * statistics. This is the tool we used to calibrate the workloads
 * against the paper's reported behaviour.
 *
 * Usage: traffic_explorer [game] [WxH] [design] [frame]
 *   design: baseline | bpim | stfim | atfim   (default baseline)
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

using namespace texpim;

int
main(int argc, char **argv)
{
    Workload wl{Game::Doom3, 640, 480};
    Design design = Design::Baseline;
    unsigned frame = 3;

    if (argc > 1) {
        std::string g = argv[1];
        if (g == "doom3")
            wl.game = Game::Doom3;
        else if (g == "fear")
            wl.game = Game::Fear;
        else if (g == "hl2")
            wl.game = Game::HalfLife2;
        else if (g == "riddick")
            wl.game = Game::Riddick;
        else if (g == "wolfenstein")
            wl.game = Game::Wolfenstein;
        else
            TEXPIM_FATAL("unknown game '", g, "'");
    }
    if (argc > 2 &&
        std::sscanf(argv[2], "%ux%u", &wl.width, &wl.height) != 2)
        TEXPIM_FATAL("bad resolution '", argv[2], "'");
    if (argc > 3) {
        std::string d = argv[3];
        if (d == "baseline")
            design = Design::Baseline;
        else if (d == "bpim")
            design = Design::BPim;
        else if (d == "stfim")
            design = Design::STfim;
        else if (d == "atfim")
            design = Design::ATfim;
        else
            TEXPIM_FATAL("unknown design '", d, "'");
    }
    if (argc > 4)
        frame = unsigned(std::atoi(argv[4]));

    Scene scene = buildGameScene(wl, frame);
    SimConfig cfg;
    cfg.design = design;
    RenderingSimulator sim(cfg);
    SimResult r = sim.renderScene(scene);

    std::printf("=== %s under %s ===\n", wl.label().c_str(),
                designName(design));
    std::printf("triangles: %u submitted, %llu setup, %llu hier-Z skipped\n",
                scene.triangleCount(),
                (unsigned long long)r.frame.trianglesSetup,
                (unsigned long long)r.frame.hierZTrianglesSkipped);
    std::printf("fragments: %llu covered, %llu shaded, %llu early-Z "
                "killed (overdraw %.2fx)\n",
                (unsigned long long)r.frame.fragmentsCovered,
                (unsigned long long)r.frame.fragmentsShaded,
                (unsigned long long)r.frame.fragmentsEarlyZKilled,
                double(r.frame.fragmentsCovered) /
                    double(wl.width * wl.height));
    std::printf("avg camera angle %.1f deg, avg aniso %.2fx\n",
                r.frame.avgCameraAngleRad * 180.0 / 3.14159,
                r.frame.avgAnisoRatio);

    std::printf("\ncycles: frame %llu (geometry %llu)\n",
                (unsigned long long)r.frame.frameCycles,
                (unsigned long long)r.frame.geometryCycles);
    std::printf("texture: %llu requests, filter-cycle sum %llu "
                "(mean latency %.1f)\n",
                (unsigned long long)r.frame.texRequests,
                (unsigned long long)r.textureFilterCycles,
                r.frame.texRequests
                    ? double(r.textureFilterCycles) /
                          double(r.frame.texRequests)
                    : 0.0);

    std::printf("\noff-chip traffic by class (MB):\n");
    double total = double(r.offChipTotalBytes);
    for (unsigned c = 0; c < kNumTrafficClasses; ++c) {
        double b = double(r.offChipBytesByClass[c]);
        std::printf("  %-12s %9.2f  (%5.1f%%)\n",
                    trafficClassName(TrafficClass(c)), b / 1e6,
                    total > 0 ? 100.0 * b / total : 0.0);
    }
    std::printf("  %-12s %9.2f\n", "TOTAL", total / 1e6);
    std::printf("  texture share incl. packages: %.1f%%\n",
                total > 0 ? 100.0 * double(r.textureTrafficBytes) / total
                          : 0.0);

    double peak = sim.memory().peakOffChipBytesPerCycle();
    std::printf("\nbus: peak %.0f B/cyc, frame-average utilization %.1f%%\n",
                peak,
                100.0 * total / (double(r.frame.frameCycles) * peak));

    std::printf("\nenergy: total %.2f mJ (shader %.2f, texture %.2f, cache "
                "%.2f, memory %.2f, background %.2f, leakage %.2f)\n",
                r.energy.total() * 1e3, r.energy.shaderJ * 1e3,
                r.energy.textureJ * 1e3, r.energy.cacheJ * 1e3,
                r.energy.memoryJ * 1e3, r.energy.backgroundJ * 1e3,
                r.energy.leakageJ * 1e3);

    std::printf("\ntexture-path statistics:\n");
    sim.texturePath().stats().dump(std::cout);
    std::printf("\nrenderer statistics:\n");
    sim.rendererStats().dump(std::cout);
    std::printf("\nmemory-system statistics:\n");
    sim.memory().stats().dump(std::cout);
    return 0;
}
