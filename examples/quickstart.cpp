/**
 * @file
 * Quickstart: render one frame of a game workload under all four
 * design points (Baseline, B-PIM, S-TFIM, A-TFIM) and print the
 * paper's headline metrics — rendering speedup, texture-filtering
 * speedup, off-chip texture traffic and energy — plus the PSNR of the
 * A-TFIM approximation.
 *
 * Usage: quickstart [game] [WxH]
 *   game: doom3 | fear | hl2 | riddick | wolfenstein  (default doom3)
 *   WxH:  e.g. 640x480 (default 320x240 so it runs in seconds)
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "quality/image_metrics.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

using namespace texpim;

int
main(int argc, char **argv)
{
    Workload wl{Game::Doom3, 320, 240};
    if (argc > 1) {
        std::string g = argv[1];
        if (g == "doom3")
            wl.game = Game::Doom3;
        else if (g == "fear")
            wl.game = Game::Fear;
        else if (g == "hl2")
            wl.game = Game::HalfLife2;
        else if (g == "riddick")
            wl.game = Game::Riddick;
        else if (g == "wolfenstein")
            wl.game = Game::Wolfenstein;
        else
            TEXPIM_FATAL("unknown game '", g, "'");
    }
    if (argc > 2 &&
        std::sscanf(argv[2], "%ux%u", &wl.width, &wl.height) != 2)
        TEXPIM_FATAL("bad resolution '", argv[2], "' (expected WxH)");

    Scene scene = buildGameScene(wl, /*frame=*/3);
    std::printf("workload %s: %u triangles, %u textures, aniso %ux\n",
                wl.label().c_str(), scene.triangleCount(),
                scene.textures->count(), scene.settings.maxAniso);

    const Design designs[] = {Design::Baseline, Design::BPim, Design::STfim,
                              Design::ATfim};

    SimResult base;
    std::printf("\n%-10s %14s %12s %14s %12s %10s\n", "design",
                "frame cycles", "render x", "texfilter x", "tex MB",
                "energy mJ");
    for (Design d : designs) {
        SimConfig cfg;
        cfg.design = d;
        RenderingSimulator sim(cfg);
        SimResult r = sim.renderScene(scene);
        if (d == Design::Baseline)
            base = r;

        double render_x = double(base.frame.frameCycles) /
                          double(r.frame.frameCycles);
        double tex_x = double(base.textureFilterCycles) /
                       double(r.textureFilterCycles);
        std::printf("%-10s %14llu %12.2f %14.2f %12.1f %10.2f\n",
                    designName(d),
                    (unsigned long long)r.frame.frameCycles, render_x, tex_x,
                    double(r.textureTrafficBytes) / 1e6,
                    r.energy.total() * 1e3);

        if (d == Design::ATfim) {
            double q = psnr(*base.image, *r.image);
            std::printf("\nA-TFIM image quality vs baseline: PSNR %.1f dB "
                        "(>70 is visually lossless), %llu recalcs\n",
                        q, (unsigned long long)r.angleRecalcs);
            writePpm(*r.image, "quickstart_atfim.ppm");
            writePpm(*base.image, "quickstart_baseline.ppm");
            std::printf("wrote quickstart_baseline.ppm / "
                        "quickstart_atfim.ppm\n");
        }
    }
    return 0;
}
