/**
 * @file
 * Design-space exploration beyond the paper's configurations: sweep
 * HMC external bandwidth, texture-cache capacity, and anisotropy
 * level, and report how each design point's A-TFIM advantage moves —
 * the kind of sensitivity study a follow-on paper would run.
 *
 * Usage: design_space [game] [WxH]
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "sim/simulator.hh"

using namespace texpim;

namespace {

double
renderSpeedup(const Scene &scene, const SimConfig &base_cfg,
              const SimConfig &cfg)
{
    RenderingSimulator base(base_cfg);
    RenderingSimulator sim(cfg);
    double b = double(base.renderScene(scene).frame.frameCycles);
    double d = double(sim.renderScene(scene).frame.frameCycles);
    return b / d;
}

} // namespace

int
main(int argc, char **argv)
{
    Workload wl{Game::Doom3, 640, 480};
    if (argc > 1) {
        std::string g = argv[1];
        if (g == "doom3")
            wl.game = Game::Doom3;
        else if (g == "fear")
            wl.game = Game::Fear;
        else if (g == "hl2")
            wl.game = Game::HalfLife2;
        else if (g == "riddick")
            wl.game = Game::Riddick;
        else if (g == "wolfenstein")
            wl.game = Game::Wolfenstein;
        else
            TEXPIM_FATAL("unknown game '", g, "'");
    }
    if (argc > 2 &&
        std::sscanf(argv[2], "%ux%u", &wl.width, &wl.height) != 2)
        TEXPIM_FATAL("bad resolution '", argv[2], "'");

    Scene scene = buildGameScene(wl, 3);
    SimConfig base;
    base.design = Design::Baseline;

    std::printf("=== design space around %s ===\n\n", wl.label().c_str());

    std::printf("HMC external bandwidth sweep (A-TFIM rendering "
                "speedup):\n");
    for (double gbs : {160.0, 320.0, 640.0}) {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.hmc.externalBandwidthGBs = gbs;
        std::printf("  %4.0f GB/s: %5.2fx\n", gbs,
                    renderSpeedup(scene, base, cfg));
    }

    std::printf("\ntexture L2 capacity sweep (baseline render cycles, "
                "relative to 128 KB):\n");
    SimConfig ref = base;
    RenderingSimulator ref_sim(ref);
    double ref_cycles = double(ref_sim.renderScene(scene).frame.frameCycles);
    for (u64 kb : {32, 128, 512}) {
        SimConfig cfg = base;
        cfg.gpu.texL2.sizeBytes = kb * 1024;
        RenderingSimulator sim(cfg);
        double c = double(sim.renderScene(scene).frame.frameCycles);
        std::printf("  %4llu KB: %.2fx cycles\n", (unsigned long long)kb,
                    c / ref_cycles);
    }

    std::printf("\nHMC cube-count sweep (A-TFIM rendering speedup, "
                "SV-E):\n");
    for (unsigned cubes : {1u, 2u, 4u}) {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.hmc.cubes = cubes;
        std::printf("  %u cube%s: %5.2fx\n", cubes, cubes > 1 ? "s" : " ",
                    renderSpeedup(scene, base, cfg));
    }

    std::printf("\nmax anisotropy sweep (A-TFIM texture-filtering "
                "speedup):\n");
    for (unsigned aniso : {2u, 4u, 8u, 16u}) {
        Scene s = scene;
        s.settings.maxAniso = aniso;
        SimConfig cfg;
        cfg.design = Design::ATfim;
        RenderingSimulator b(base), a(cfg);
        double bt = double(b.renderScene(s).textureFilterCycles);
        double at = double(a.renderScene(s).textureFilterCycles);
        std::printf("  %2ux: %5.2fx\n", aniso, bt / at);
    }
    return 0;
}
