/**
 * @file
 * Quality explorer: render a workload under the baseline and under
 * A-TFIM at every camera-angle threshold the paper studies (§VII-D),
 * reporting PSNR, SSIM, differing-pixel counts and the recalculation
 * rate, and writing the frames as PPM images for visual inspection.
 *
 * Usage: quality_explorer [game] [WxH] [frame]
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "quality/image_metrics.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

using namespace texpim;

int
main(int argc, char **argv)
{
    Workload wl{Game::Doom3, 640, 480};
    unsigned frame = 3;
    if (argc > 1) {
        std::string g = argv[1];
        if (g == "doom3")
            wl.game = Game::Doom3;
        else if (g == "fear")
            wl.game = Game::Fear;
        else if (g == "hl2")
            wl.game = Game::HalfLife2;
        else if (g == "riddick")
            wl.game = Game::Riddick;
        else if (g == "wolfenstein")
            wl.game = Game::Wolfenstein;
        else
            TEXPIM_FATAL("unknown game '", g, "'");
    }
    if (argc > 2 &&
        std::sscanf(argv[2], "%ux%u", &wl.width, &wl.height) != 2)
        TEXPIM_FATAL("bad resolution '", argv[2], "'");
    if (argc > 3)
        frame = unsigned(std::atoi(argv[3]));

    Scene scene = buildGameScene(wl, frame);

    SimConfig base_cfg;
    base_cfg.design = Design::Baseline;
    RenderingSimulator base_sim(base_cfg);
    SimResult base = base_sim.renderScene(scene);
    writePpm(*base.image, "quality_baseline.ppm");

    struct Point
    {
        const char *name;
        float threshold;
    };
    const Point points[] = {
        {"A-TFIM-0005pi", kThreshold0005Pi},
        {"A-TFIM-001pi", kThreshold001Pi},
        {"A-TFIM-005pi", kThreshold005Pi},
        {"A-TFIM-01pi", kThreshold01Pi},
        {"A-TFIM-no", kThresholdNoRecalc},
    };

    std::printf("%-16s %8s %8s %10s %12s %10s\n", "config", "PSNR",
                "SSIM", "diff px", "recalcs", "speedup");
    u64 total_px = u64(wl.width) * wl.height;
    for (const Point &p : points) {
        SimConfig cfg;
        cfg.design = Design::ATfim;
        cfg.angleThresholdRad = p.threshold;
        RenderingSimulator sim(cfg);
        SimResult r = sim.renderScene(scene);
        double q = psnr(*base.image, *r.image);
        double s = ssim(*base.image, *r.image);
        u64 diff = differingPixels(*base.image, *r.image);
        double speedup = double(base.frame.frameCycles) /
                         double(r.frame.frameCycles);
        std::printf("%-16s %8.1f %8.4f %6.1f%%   %12llu %9.2fx\n", p.name,
                    q, s, 100.0 * double(diff) / double(total_px),
                    (unsigned long long)r.angleRecalcs, speedup);
        std::string out = std::string("quality_") + p.name + ".ppm";
        writePpm(*r.image, out);
    }
    std::printf("wrote quality_baseline.ppm and per-threshold frames\n");
    return 0;
}
