/**
 * @file
 * The `texpim` command-line driver: render workloads or traces under
 * any design point, compare designs, and dump configurations — the
 * day-to-day entry point for using the simulator outside the canned
 * benches.
 *
 *   texpim render  <game|trace.texpim> [key=value ...]
 *   texpim compare <game> [key=value ...]
 *   texpim frames  <game> <count> [key=value ...]
 *   texpim sweep   [game ...] [key=value ...]
 *   texpim report  <game|trace.texpim> [key=value ...]
 *   texpim config  [key=value ...]
 *   texpim stats   [key=value ...]
 *
 * `report` renders all four designs with the cycle-domain profiler and
 * traffic attribution enabled, and writes a self-contained markdown
 * (or, with a .html report_out, HTML) report: phase breakdown, hot
 * zones, off-chip traffic by class, per-texture/per-mip traffic and
 * per-vault utilization timelines.
 *
 * `sweep` runs the full (design x game) grid — all four designs over
 * the listed games (default: all five paper games) — on a pool of
 * jobs=N worker threads (see README "Running sweeps in parallel").
 * Per-spec metrics and merged stats are byte-identical whatever
 * jobs= is; with trace_out=, job k writes "<trace_out>.job<k>".
 * metrics_out=<file.json> exports the per-spec sweep results
 * ("texpim-sweep-v2", with per-spec status/attempts/error fields).
 *
 * Sweeps are resilient (see README "Resilient sweeps"): a spec that
 * throws, panics or exceeds sim.job_timeout_ms= becomes a
 * status=failed/timeout row instead of killing the grid;
 * runner.max_retries= re-runs transient failures with seeded backoff;
 * sweep_journal=<file.jsonl> checkpoints each finished spec and
 * resume=<file.jsonl> continues an interrupted sweep with
 * byte-identical final outputs. sim.inject_failure=
 * ([design:]throw|panic|hang, comma-separated) injects failures for
 * testing the machinery itself.
 *
 * Recognized keys: every SimConfig key (design=..., gpu.*, hmc.*,
 * gddr5.*, atfim.*, energy.*, pim.*, fault_*) plus:
 *   width=, height=, frame=, seed=, max_aniso=, out=<frame.ppm>,
 *   compress=true (BC1 textures)
 *
 * Unknown keys draw a warning with a "did you mean" suggestion;
 * strict_config=1 turns the warning into a fatal error.
 *
 * Observability keys (see README "Observability"):
 *   stats_out=<file.json|.csv>  structured export of every registered
 *                               statistic after the run (render also
 *                               embeds the per-frame SimResult)
 *   trace_out=<file.json>       cycle-level Chrome trace-event file
 *                               (load in chrome://tracing or Perfetto)
 *   trace_cap=<N>               trace event cap (default 1000000)
 *   prof=1                      enable the cycle-domain profiler
 *   prof_out=<file.json>        zone-tree profile export (implies prof=1)
 *   prof.epoch_cycles=<N>       utilization sampling period (default 65536)
 *   prof.wall=1                 include host wall-clock fields in the
 *                               profile/report (host-dependent!)
 *   report_out=<file.md|.html>  report destination (report command)
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/prof/profiler.hh"
#include "common/stat_export.hh"
#include "common/stat_registry.hh"
#include "common/trace_events.hh"
#include "gpu/params.hh"
#include "quality/image_metrics.hh"
#include "scene/trace.hh"
#include "sim/attribution/attribution.hh"
#include "sim/attribution/report.hh"
#include "sim/experiment.hh"
#include "sim/runner/experiment_runner.hh"
#include "sim/runner/sweep_journal.hh"
#include "sim/simulator.hh"

using namespace texpim;

namespace {

bool
parseGame(const std::string &g, Game &out)
{
    if (g == "doom3")
        out = Game::Doom3;
    else if (g == "fear")
        out = Game::Fear;
    else if (g == "hl2")
        out = Game::HalfLife2;
    else if (g == "riddick")
        out = Game::Riddick;
    else if (g == "wolfenstein")
        out = Game::Wolfenstein;
    else
        return false;
    return true;
}

Config
collectConfig(int argc, char **argv, int first)
{
    Config cfg;
    for (int i = first; i < argc; ++i)
        cfg.parseItem(argv[i]);
    return cfg;
}

/**
 * Unknown-key validation. Every key SimConfig::fromConfig (or scene
 * loading) queried is known automatically; knownConfigKeys() — the
 * authoritative table texpim-lint rule C1 reconciles against the
 * sources and the README — covers the CLI-only keys too. Unknown keys
 * warn with a "did you mean" suggestion, or die when strict_config=1.
 */
void
validateConfig(const Config &cfg)
{
    cfg.checkKnownKeys(knownConfigKeys(),
                       cfg.getBool("strict_config", false));
}

Scene
loadScene(const std::string &source, const Config &cfg)
{
    Scene scene;
    Game game;
    if (parseGame(source, game)) {
        Workload wl{game, unsigned(cfg.getInt("width", 640)),
                    unsigned(cfg.getInt("height", 480))};
        scene = buildGameScene(wl, unsigned(cfg.getInt("frame", 3)),
                               u64(cfg.getInt("seed", 0x7e01d)));
    } else {
        scene = readTraceFile(source);
    }
    if (cfg.has("max_aniso"))
        scene.settings.maxAniso = unsigned(cfg.getInt("max_aniso"));
    if (cfg.getBool("compress", false))
        scene = withTextureFormat(scene, TexelFormat::Bc1);
    return scene;
}

void
printResult(const char *tag, const SimResult &r)
{
    std::printf("%-10s %12llu cycles | tex-filter %12llu | off-chip "
                "%7.2f MB (tex %5.1f%%) | %7.2f mJ | recalcs %llu\n",
                tag, (unsigned long long)r.frame.frameCycles,
                (unsigned long long)r.textureFilterCycles,
                double(r.offChipTotalBytes) / 1e6,
                r.offChipTotalBytes
                    ? 100.0 * double(r.textureTrafficBytes) /
                          double(r.offChipTotalBytes)
                    : 0.0,
                r.energy.total() * 1e3,
                (unsigned long long)r.angleRecalcs);
}

/** Start event tracing when trace_out= is present. */
void
beginTracing(const Config &cfg)
{
    std::string out = cfg.getString("trace_out", "");
    if (out.empty())
        return;
#if !TEXPIM_TRACING
    TEXPIM_FATAL("trace_out= requires a build with -DTEXPIM_TRACING=ON");
#endif
    TraceEvents::instance().enable(
        out, u64(cfg.getInt("trace_cap",
                            i64(TraceEvents::kDefaultEventCap))));
}

/** Stop tracing and write the trace file, if tracing was on. */
void
endTracing()
{
    TraceEvents &t = TraceEvents::instance();
    if (!TraceEvents::active())
        return;
    t.disable();
    std::printf("wrote %s (%llu events, %llu dropped)\n", t.path().c_str(),
                (unsigned long long)t.recorded(),
                (unsigned long long)t.dropped());
}

/** Start the cycle-domain profiler when prof=1 or prof_out= asks. */
void
beginProfiling(const Config &cfg)
{
    if (!cfg.getBool("prof", false) &&
        cfg.getString("prof_out", "").empty())
        return;
    Profiler::instance().enable(u64(cfg.getInt("prof.epoch_cycles", 0)));
}

/**
 * Stop profiling and write `out` (schema "texpim-prof-v1"), with the
 * last frame's traffic attribution embedded when available. The file
 * is byte-identical across hosts and thread counts unless prof.wall=1
 * adds the host wall-clock fields. Also replays the attribution's
 * per-vault utilization timeline into the trace as counter events, so
 * call this before endTracing().
 */
void
endProfiling(const Config &cfg, const TrafficAttribution *attrib,
             const std::string &out)
{
    Profiler &p = Profiler::instance();
    if (!p.enabled())
        return;
    if (attrib != nullptr && TraceEvents::active())
        attrib->emitCounters(TraceEvents::instance());
    p.disable();
    if (out.empty())
        return;
    JsonWriter w;
    w.beginObject();
    w.keyValue("schema", "texpim-prof-v1");
    w.keyValue("epoch_cycles", p.epochCycles());
    w.key("zones");
    p.writeJson(w, cfg.getBool("prof.wall", false));
    if (attrib != nullptr) {
        w.key("attribution");
        attrib->writeJson(w);
    }
    w.endObject();
    writeTextFile(out, w.str());
    std::printf("wrote %s\n", out.c_str());
}

bool
isCsvPath(const std::string &path)
{
    return path.size() >= 4 &&
           path.compare(path.size() - 4, 4, ".csv") == 0;
}

/** Export every registered stat group, optionally embedding a
 *  SimResult summary (JSON only). */
void
exportStats(const std::string &path, const SimResult *result)
{
    if (isCsvPath(path) || result == nullptr) {
        writeStatsFile(path);
    } else {
        JsonWriter w;
        w.beginObject();
        w.keyValue("schema", "texpim-stats-v1");
        w.key("result");
        writeSimResultJson(w, *result);
        w.key("groups").beginArray();
        for (const auto &[display, g] : StatRegistry::instance().groups())
            writeGroupJson(w, display, *g);
        w.endArray();
        w.endObject();
        writeTextFile(path, w.str());
    }
    std::printf("wrote %s\n", path.c_str());
}

int
cmdRender(int argc, char **argv)
{
    if (argc < 3)
        TEXPIM_FATAL("usage: texpim render <game|trace> [key=value ...]");
    Config cfg = collectConfig(argc, argv, 3);
    Scene scene = loadScene(argv[2], cfg);
    SimConfig sc = SimConfig::fromConfig(cfg);
    validateConfig(cfg);
    RenderingSimulator sim(sc);
    beginTracing(cfg);
    beginProfiling(cfg);
    SimResult r = sim.renderScene(scene);
    endProfiling(cfg, sim.attribution(), cfg.getString("prof_out", ""));
    endTracing();
    printResult(designName(sc.design), r);
    std::string stats_out = cfg.getString("stats_out", "");
    if (!stats_out.empty())
        exportStats(stats_out, &r);
    std::string out = cfg.getString("out", "");
    if (!out.empty()) {
        writePpm(*r.image, out);
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}

/** "dir/stats.json" + "atfim" -> "dir/stats-atfim.json". */
std::string
perDesignPath(const std::string &path, const char *design)
{
    size_t dot = path.find_last_of('.');
    size_t slash = path.find_last_of('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "-" + design;
    return path.substr(0, dot) + "-" + design + path.substr(dot);
}

int
cmdCompare(int argc, char **argv)
{
    if (argc < 3)
        TEXPIM_FATAL("usage: texpim compare <game|trace> [key=value ...]");
    Config cfg = collectConfig(argc, argv, 3);
    Scene scene = loadScene(argv[2], cfg);
    std::string stats_out = cfg.getString("stats_out", "");
    SimConfig::fromConfig(cfg); // query every sim key, then validate
    validateConfig(cfg);
    beginTracing(cfg);

    std::string prof_out = cfg.getString("prof_out", "");
    SimResult base;
    for (Design d : {Design::Baseline, Design::BPim, Design::STfim,
                     Design::ATfim}) {
        SimConfig sc = SimConfig::fromConfig(cfg);
        sc.design = d;
        RenderingSimulator sim(sc);
        beginProfiling(cfg);
        SimResult r = sim.renderScene(scene);
        endProfiling(cfg, sim.attribution(),
                     prof_out.empty()
                         ? prof_out
                         : perDesignPath(prof_out, designName(d)));
        if (d == Design::Baseline)
            base = r;
        printResult(designName(d), r);
        if (d != Design::Baseline) {
            std::printf("%-10s render %.2fx, tex-filter %.2fx, PSNR "
                        "%.1f\n",
                        "", double(base.frame.frameCycles) /
                                double(r.frame.frameCycles),
                        double(base.textureFilterCycles) /
                            double(r.textureFilterCycles),
                        psnr(*base.image, *r.image));
        }
        // Per-design stats file while this design's groups are live.
        if (!stats_out.empty())
            exportStats(perDesignPath(stats_out, designName(d)), &r);
    }
    endTracing();
    return 0;
}

int
cmdFrames(int argc, char **argv)
{
    if (argc < 4)
        TEXPIM_FATAL(
            "usage: texpim frames <game> <count> [key=value ...]");
    Game game;
    if (!parseGame(argv[2], game))
        TEXPIM_FATAL("unknown game '", argv[2], "'");
    unsigned count = unsigned(std::atoi(argv[3]));
    Config cfg = collectConfig(argc, argv, 4);
    Workload wl{game, unsigned(cfg.getInt("width", 640)),
                unsigned(cfg.getInt("height", 480))};
    SimConfig sc = SimConfig::fromConfig(cfg);
    validateConfig(cfg);
    RenderingSimulator sim(sc);
    beginTracing(cfg);
    beginProfiling(cfg);
    auto frames = sim.renderSequence(wl, count,
                                     unsigned(cfg.getInt("frame", 0)),
                                     u64(cfg.getInt("seed", 0x7e01d)));
    // Like stats_out below, the profile reflects the final frame
    // (zones accumulate across frames; attribution is per frame).
    endProfiling(cfg, sim.attribution(), cfg.getString("prof_out", ""));
    endTracing();
    for (unsigned f = 0; f < frames.size(); ++f) {
        char tag[32];
        std::snprintf(tag, sizeof tag, "frame %u", f);
        printResult(tag, frames[f]);
    }
    // Component stats are reset per frame in renderSequence, so the
    // export reflects the final frame; the embedded result matches.
    std::string stats_out = cfg.getString("stats_out", "");
    if (!stats_out.empty())
        exportStats(stats_out, frames.empty() ? nullptr : &frames.back());
    // out=path.ppm writes path-<f>.ppm per frame; CI byte-compares
    // these between pipelined and serial sequence runs.
    std::string out = cfg.getString("out", "");
    if (!out.empty()) {
        for (unsigned f = 0; f < frames.size(); ++f) {
            std::string path =
                perDesignPath(out, std::to_string(f).c_str());
            writePpm(*frames[f].image, path);
            std::printf("wrote %s\n", path.c_str());
        }
    }
    return 0;
}

/** sim.inject_failure= kind token (tests/CI; see InjectedFailure). */
InjectedFailure
parseFailureKind(const std::string &kind)
{
    if (kind == "throw")
        return InjectedFailure::Throw;
    if (kind == "panic")
        return InjectedFailure::Panic;
    if (kind == "hang")
        return InjectedFailure::Hang;
    TEXPIM_FATAL("bad sim.inject_failure kind '", kind,
                 "' (throw|panic|hang)");
}

bool
parseDesignToken(const std::string &d, Design &out)
{
    if (d == "baseline")
        out = Design::Baseline;
    else if (d == "b-pim" || d == "bpim")
        out = Design::BPim;
    else if (d == "s-tfim" || d == "stfim")
        out = Design::STfim;
    else if (d == "a-tfim" || d == "atfim")
        out = Design::ATfim;
    else
        return false;
    return true;
}

/**
 * Apply sim.inject_failure= to the sweep grid: a comma-separated list
 * of `<kind>` (all specs) or `<design>:<kind>` (that design's specs),
 * kind in throw|panic|hang. Exists so the containment, watchdog and
 * retry machinery can be exercised end to end from the CLI — e.g. the
 * CI fault-containment smoke runs
 * sim.inject_failure=bpim:panic,stfim:throw,atfim:hang.
 */
void
applyInjectedFailures(std::vector<ExperimentSpec> &specs,
                      const std::string &grammar)
{
    size_t pos = 0;
    while (pos < grammar.size()) {
        size_t comma = grammar.find(',', pos);
        std::string item = grammar.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? grammar.size() : comma + 1;
        if (item.empty())
            continue;
        size_t colon = item.find(':');
        if (colon == std::string::npos) {
            InjectedFailure kind = parseFailureKind(item);
            for (ExperimentSpec &s : specs)
                s.inject = kind;
        } else {
            Design d;
            if (!parseDesignToken(item.substr(0, colon), d))
                TEXPIM_FATAL("bad sim.inject_failure design '",
                             item.substr(0, colon),
                             "' (baseline|bpim|stfim|atfim)");
            InjectedFailure kind = parseFailureKind(item.substr(colon + 1));
            for (ExperimentSpec &s : specs)
                if (s.config.design == d)
                    s.inject = kind;
        }
    }
}

/**
 * The (design x game) grid on the ExperimentRunner job pool. Every
 * output — the table, metrics_out JSON, merged stats_out — depends
 * only on the spec list, never on jobs=, so runs are reproducible and
 * comparable across machines (the thread-count invariance test pins
 * this down). Failures are contained per spec: a throwing, panicking
 * or timed-out spec becomes a status=failed/timeout row in the
 * "texpim-sweep-v2" metrics and the sweep still exits 0 (the grid
 * completed; the rows say what happened). With sweep_journal= every
 * finished spec is checkpointed; resume=<journal> skips the completed
 * ones and reproduces byte-identical merged outputs.
 */
int
cmdSweep(int argc, char **argv)
{
    // Positional game names come before the key=value items.
    std::vector<std::string> games;
    int first = 2;
    while (first < argc && std::strchr(argv[first], '=') == nullptr)
        games.push_back(argv[first++]);
    if (games.empty())
        games = {"doom3", "fear", "hl2", "riddick", "wolfenstein"};

    Config cfg = collectConfig(argc, argv, first);
    SimConfig proto = SimConfig::fromConfig(cfg);
    unsigned width = unsigned(cfg.getInt("width", 640));
    unsigned height = unsigned(cfg.getInt("height", 480));
    unsigned frame = unsigned(cfg.getInt("frame", 3));
    u64 seed = u64(cfg.getInt("seed", 0x7e01d));
    unsigned max_aniso =
        cfg.has("max_aniso") ? unsigned(cfg.getInt("max_aniso")) : 0;
    std::string stats_out = cfg.getString("stats_out", "");
    std::string metrics_out = cfg.getString("metrics_out", "");
    std::string journal_path = cfg.getString("sweep_journal", "");
    std::string resume_path = cfg.getString("resume", "");
    std::string inject = cfg.getString("sim.inject_failure", "");

    RunnerOptions ropt;
    ropt.jobs = unsigned(cfg.getInt("jobs", 1));
    ropt.tracePath = cfg.getString("trace_out", "");
    ropt.traceCap =
        u64(cfg.getInt("trace_cap", i64(TraceEvents::kDefaultEventCap)));
    ropt.jobTimeoutMs = u64(cfg.getInt("sim.job_timeout_ms", 0));
    ropt.maxRetries = unsigned(cfg.getInt("runner.max_retries", 0));
    ropt.retryBackoffMs = u64(cfg.getInt("runner.retry_backoff_ms", 100));
#if !TEXPIM_TRACING
    if (!ropt.tracePath.empty())
        TEXPIM_FATAL(
            "trace_out= requires a build with -DTEXPIM_TRACING=ON");
#endif
    validateConfig(cfg);

    std::vector<ExperimentSpec> specs;
    for (Design d : {Design::Baseline, Design::BPim, Design::STfim,
                     Design::ATfim}) {
        for (const std::string &g : games) {
            Game game;
            if (!parseGame(g, game))
                TEXPIM_FATAL("unknown game '", g, "'");
            ExperimentSpec spec;
            spec.config = proto;
            spec.config.design = d;
            spec.workload = Workload{game, width, height};
            spec.frame = frame;
            spec.seed = seed;
            spec.maxAniso = max_aniso;
            specs.push_back(std::move(spec));
        }
    }
    if (!inject.empty())
        applyInjectedFailures(specs, inject);

    // Checkpoint/resume plumbing. resume= continues an interrupted
    // sweep's journal: restored specs are skipped and fresh ones keep
    // appending to the same file.
    std::unique_ptr<SweepJournal> journal;
    std::map<size_t, ExperimentResult> resumed;
    if (!resume_path.empty()) {
        if (!journal_path.empty() && journal_path != resume_path)
            TEXPIM_FATAL("resume= continues its own journal; drop "
                         "sweep_journal= or make it match resume=");
        std::vector<std::string> labels;
        labels.reserve(specs.size());
        for (const ExperimentSpec &s : specs)
            labels.push_back(s.name.empty() ? s.defaultLabel() : s.name);
        resumed = SweepJournal::load(resume_path, labels);
        journal = std::make_unique<SweepJournal>(resume_path, specs.size(),
                                                 /*fresh=*/false);
        ropt.resumed = &resumed;
        std::printf("resume: %zu of %zu specs restored from %s\n",
                    resumed.size(), specs.size(), resume_path.c_str());
    } else if (!journal_path.empty()) {
        journal = std::make_unique<SweepJournal>(journal_path, specs.size(),
                                                 /*fresh=*/true);
    }
    ropt.journal = journal.get();

    std::vector<ExperimentResult> results =
        ExperimentRunner(ropt).run(specs);

    size_t failed = 0;
    for (const ExperimentResult &r : results) {
        if (r.ok()) {
            printResult(r.name.c_str(), r.result);
        } else {
            ++failed;
            std::printf("%-10s %s (%s%s%s)%s: %s\n", r.name.c_str(),
                        jobStatusName(r.status),
                        jobErrorCategoryName(r.error.category),
                        r.error.site.empty() ? "" : " at ",
                        r.error.site.c_str(),
                        r.attempts > 1
                            ? (" after " + std::to_string(r.attempts) +
                               " attempts")
                                  .c_str()
                            : "",
                        r.error.message.c_str());
        }
        if (!r.traceFile.empty())
            std::printf("%-10s wrote %s\n", "", r.traceFile.c_str());
    }
    if (failed > 0)
        std::printf("%zu of %zu specs did not complete (status fields in "
                    "the metrics export say why)\n",
                    failed, results.size());

    if (!metrics_out.empty()) {
        // v1 -> v2: every spec row gains "status"/"attempts"/"error";
        // failed rows keep the numeric fields (zeros) so consumers can
        // stay column-oriented. See README "Sweep metrics schema".
        JsonWriter w;
        w.beginObject();
        w.keyValue("schema", "texpim-sweep-v2");
        w.key("specs").beginArray();
        for (const ExperimentResult &r : results) {
            char hash[32];
            std::snprintf(hash, sizeof hash, "%016llx",
                          (unsigned long long)r.imageFnv1a);
            w.beginObject();
            w.keyValue("name", r.name);
            w.keyValue("status", jobStatusName(r.status));
            w.keyValue("attempts", u64(r.attempts));
            if (r.ok()) {
                w.keyNull("error");
            } else {
                w.key("error").beginObject();
                w.keyValue("category",
                           jobErrorCategoryName(r.error.category));
                w.keyValue("site", r.error.site);
                w.keyValue("message", r.error.message);
                w.endObject();
            }
            w.keyValue("frame_cycles", u64(r.result.frame.frameCycles));
            w.keyValue("texture_filter_cycles",
                       u64(r.result.textureFilterCycles));
            w.keyValue("texture_traffic_bytes",
                       u64(r.result.textureTrafficBytes));
            w.keyValue("offchip_total_bytes",
                       u64(r.result.offChipTotalBytes));
            w.keyValue("energy_mj", r.result.energy.total() * 1e3);
            w.keyValue("image_fnv1a", std::string(hash));
            w.keyValue("total_faults", u64(r.totalFaults));
            w.endObject();
        }
        w.endArray();
        w.endObject();
        writeTextFile(metrics_out, w.str());
        std::printf("wrote %s\n", metrics_out.c_str());
    }

    if (!stats_out.empty()) {
        // "jobs" in the file is the number of merged per-spec
        // snapshots, not the worker count, so the bytes stay identical
        // whatever jobs= was.
        writeSnapshotFile(stats_out, mergedStats(results),
                          u64(results.size()));
        std::printf("wrote %s\n", stats_out.c_str());
    }
    return 0;
}

int
cmdConfig(int argc, char **argv)
{
    Config cfg = collectConfig(argc, argv, 2);
    SimConfig sc = SimConfig::fromConfig(cfg);
    validateConfig(cfg);
    std::printf("design: %s\n", designName(sc.design));
    std::printf("gpu: %u clusters x %u shaders, tile %u, tex unit %u+%u "
                "ALUs, L1 %llu KB, L2 %llu KB, window %u\n",
                sc.gpu.clusters, sc.gpu.shadersPerCluster, sc.gpu.tileSize,
                sc.gpu.texAddressAlus, sc.gpu.texFilterAlus,
                (unsigned long long)(sc.gpu.texL1.sizeBytes / 1024),
                (unsigned long long)(sc.gpu.texL2.sizeBytes / 1024),
                sc.gpu.maxInflightTexRequests);
    std::printf("gddr5: %.0f GB/s over %u channels\n",
                sc.gddr5.totalBandwidthGBs, sc.gddr5.channels);
    std::printf("hmc: %.0f GB/s external, %.0f GB/s internal, %u vaults\n",
                sc.hmc.externalBandwidthGBs, sc.hmc.internalBandwidthGBs,
                sc.hmc.vaults);
    std::printf("atfim: threshold %.4f rad, %u-wide generator/combiner, "
                "PTB %u\n",
                double(sc.angleThresholdRad), sc.atfim.texelGeneratorAlus,
                sc.atfim.parentTexelBufferEntries);
    return 0;
}

/**
 * Render all four designs with profiling + attribution on and emit a
 * self-contained report: phase breakdown (the paper's Fig. 2 at
 * per-mip grain), hot zones by self cycles, off-chip traffic by
 * class, per-texture/per-mip traffic and per-vault utilization
 * timelines. report_out= ending in .html selects the HTML rendering;
 * anything else gets markdown.
 */
int
cmdReport(int argc, char **argv)
{
    if (argc < 3)
        TEXPIM_FATAL("usage: texpim report <game|trace> [key=value ...]");
    Config cfg = collectConfig(argc, argv, 3);
    Scene scene = loadScene(argv[2], cfg);
    SimConfig::fromConfig(cfg); // query every sim key, then validate
    validateConfig(cfg);
    beginTracing(cfg);

    bool wall = cfg.getBool("prof.wall", false);
    u64 epoch = u64(cfg.getInt("prof.epoch_cycles", 0));
    std::string prof_out = cfg.getString("prof_out", "");
    ReportBuilder report(argv[2]);
    for (Design d : {Design::Baseline, Design::BPim, Design::STfim,
                     Design::ATfim}) {
        SimConfig sc = SimConfig::fromConfig(cfg);
        sc.design = d;
        RenderingSimulator sim(sc);
        Profiler::instance().enable(epoch);
        SimResult r = sim.renderScene(scene);
        TEXPIM_ASSERT(sim.attribution() != nullptr,
                      "profiling was on, so the frame was attributed");
        report.addDesign(designName(d), r, Profiler::instance(),
                         *sim.attribution(), wall);
        endProfiling(cfg, sim.attribution(),
                     prof_out.empty()
                         ? prof_out
                         : perDesignPath(prof_out, designName(d)));
        printResult(designName(d), r);
    }
    endTracing();

    std::string out = cfg.getString("report_out", "texpim-report.md");
    bool html = out.size() >= 5 &&
                out.compare(out.size() - 5, 5, ".html") == 0;
    writeTextFile(out, html ? report.html() : report.markdown());
    std::printf("wrote %s\n", out.c_str());
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    Config cfg = collectConfig(argc, argv, 2);

    // Instantiate every design point so each component registers its
    // statistics (with descriptions) in the global registry.
    std::vector<std::unique_ptr<RenderingSimulator>> sims;
    for (Design d : {Design::Baseline, Design::BPim, Design::STfim,
                     Design::ATfim}) {
        SimConfig sc = SimConfig::fromConfig(cfg);
        sc.design = d;
        sims.push_back(std::make_unique<RenderingSimulator>(sc));
    }
    validateConfig(cfg);

    // Dedup by (group, stat): the four designs share components.
    std::map<std::pair<std::string, std::string>,
             std::pair<const char *, std::string>>
        rows;
    for (const auto &[display, g] : StatRegistry::instance().groups()) {
        for (const auto &kv : g->counters())
            rows[{g->name(), kv.first}] = {"counter",
                                           g->description(kv.first)};
        for (const auto &kv : g->averages())
            rows[{g->name(), kv.first}] = {"average",
                                           g->description(kv.first)};
        for (const auto &kv : g->histograms())
            rows[{g->name(), kv.first}] = {"histogram",
                                           g->description(kv.first)};
    }

    std::printf("%-44s %-10s %s\n", "statistic", "kind", "description");
    std::printf("%-44s %-10s %s\n", "---------", "----", "-----------");
    for (const auto &[key, row] : rows) {
        std::string full = key.first + "." + key.second;
        std::printf("%-44s %-10s %s\n", full.c_str(), row.first,
                    row.second.c_str());
    }
    std::printf("\n%zu statistics in %zu groups (stats registered at "
                "construction; more appear once a frame renders)\n",
                rows.size(), StatRegistry::instance().size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: texpim "
                     "<render|compare|frames|sweep|report|config|stats>"
                     " ...\n");
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "render")
        return cmdRender(argc, argv);
    if (cmd == "compare")
        return cmdCompare(argc, argv);
    if (cmd == "frames")
        return cmdFrames(argc, argv);
    if (cmd == "sweep")
        return cmdSweep(argc, argv);
    if (cmd == "report")
        return cmdReport(argc, argv);
    if (cmd == "config")
        return cmdConfig(argc, argv);
    if (cmd == "stats")
        return cmdStats(argc, argv);
    TEXPIM_FATAL("unknown command '", cmd, "'");
}
