/**
 * @file
 * The `texpim` command-line driver: render workloads or traces under
 * any design point, compare designs, and dump configurations — the
 * day-to-day entry point for using the simulator outside the canned
 * benches.
 *
 *   texpim render  <game|trace.texpim> [key=value ...]
 *   texpim compare <game> [key=value ...]
 *   texpim frames  <game> <count> [key=value ...]
 *   texpim config  [key=value ...]
 *
 * Recognized keys: every SimConfig key (design=..., gpu.*, hmc.*,
 * gddr5.*, atfim.*, energy.*, pim.*) plus:
 *   width=, height=, frame=, seed=, max_aniso=, out=<frame.ppm>,
 *   compress=true (BC1 textures)
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "quality/image_metrics.hh"
#include "scene/trace.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

using namespace texpim;

namespace {

bool
parseGame(const std::string &g, Game &out)
{
    if (g == "doom3")
        out = Game::Doom3;
    else if (g == "fear")
        out = Game::Fear;
    else if (g == "hl2")
        out = Game::HalfLife2;
    else if (g == "riddick")
        out = Game::Riddick;
    else if (g == "wolfenstein")
        out = Game::Wolfenstein;
    else
        return false;
    return true;
}

Config
collectConfig(int argc, char **argv, int first)
{
    Config cfg;
    for (int i = first; i < argc; ++i)
        cfg.parseItem(argv[i]);
    return cfg;
}

Scene
loadScene(const std::string &source, const Config &cfg)
{
    Scene scene;
    Game game;
    if (parseGame(source, game)) {
        Workload wl{game, unsigned(cfg.getInt("width", 640)),
                    unsigned(cfg.getInt("height", 480))};
        scene = buildGameScene(wl, unsigned(cfg.getInt("frame", 3)),
                               u64(cfg.getInt("seed", 0x7e01d)));
    } else {
        scene = readTraceFile(source);
    }
    if (cfg.has("max_aniso"))
        scene.settings.maxAniso = unsigned(cfg.getInt("max_aniso"));
    if (cfg.getBool("compress", false))
        scene = withTextureFormat(scene, TexelFormat::Bc1);
    return scene;
}

void
printResult(const char *tag, const SimResult &r)
{
    std::printf("%-10s %12llu cycles | tex-filter %12llu | off-chip "
                "%7.2f MB (tex %5.1f%%) | %7.2f mJ | recalcs %llu\n",
                tag, (unsigned long long)r.frame.frameCycles,
                (unsigned long long)r.textureFilterCycles,
                double(r.offChipTotalBytes) / 1e6,
                r.offChipTotalBytes
                    ? 100.0 * double(r.textureTrafficBytes) /
                          double(r.offChipTotalBytes)
                    : 0.0,
                r.energy.total() * 1e3,
                (unsigned long long)r.angleRecalcs);
}

int
cmdRender(int argc, char **argv)
{
    if (argc < 3)
        TEXPIM_FATAL("usage: texpim render <game|trace> [key=value ...]");
    Config cfg = collectConfig(argc, argv, 3);
    Scene scene = loadScene(argv[2], cfg);
    SimConfig sc = SimConfig::fromConfig(cfg);
    RenderingSimulator sim(sc);
    SimResult r = sim.renderScene(scene);
    printResult(designName(sc.design), r);
    std::string out = cfg.getString("out", "");
    if (!out.empty()) {
        writePpm(*r.image, out);
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}

int
cmdCompare(int argc, char **argv)
{
    if (argc < 3)
        TEXPIM_FATAL("usage: texpim compare <game|trace> [key=value ...]");
    Config cfg = collectConfig(argc, argv, 3);
    Scene scene = loadScene(argv[2], cfg);

    SimResult base;
    for (Design d : {Design::Baseline, Design::BPim, Design::STfim,
                     Design::ATfim}) {
        SimConfig sc = SimConfig::fromConfig(cfg);
        sc.design = d;
        RenderingSimulator sim(sc);
        SimResult r = sim.renderScene(scene);
        if (d == Design::Baseline)
            base = r;
        printResult(designName(d), r);
        if (d != Design::Baseline) {
            std::printf("%-10s render %.2fx, tex-filter %.2fx, PSNR "
                        "%.1f\n",
                        "", double(base.frame.frameCycles) /
                                double(r.frame.frameCycles),
                        double(base.textureFilterCycles) /
                            double(r.textureFilterCycles),
                        psnr(*base.image, *r.image));
        }
    }
    return 0;
}

int
cmdFrames(int argc, char **argv)
{
    if (argc < 4)
        TEXPIM_FATAL(
            "usage: texpim frames <game> <count> [key=value ...]");
    Game game;
    if (!parseGame(argv[2], game))
        TEXPIM_FATAL("unknown game '", argv[2], "'");
    unsigned count = unsigned(std::atoi(argv[3]));
    Config cfg = collectConfig(argc, argv, 4);
    Workload wl{game, unsigned(cfg.getInt("width", 640)),
                unsigned(cfg.getInt("height", 480))};
    SimConfig sc = SimConfig::fromConfig(cfg);
    RenderingSimulator sim(sc);
    auto frames = sim.renderSequence(wl, count,
                                     unsigned(cfg.getInt("frame", 0)),
                                     u64(cfg.getInt("seed", 0x7e01d)));
    for (unsigned f = 0; f < frames.size(); ++f) {
        char tag[32];
        std::snprintf(tag, sizeof tag, "frame %u", f);
        printResult(tag, frames[f]);
    }
    return 0;
}

int
cmdConfig(int argc, char **argv)
{
    Config cfg = collectConfig(argc, argv, 2);
    SimConfig sc = SimConfig::fromConfig(cfg);
    std::printf("design: %s\n", designName(sc.design));
    std::printf("gpu: %u clusters x %u shaders, tile %u, tex unit %u+%u "
                "ALUs, L1 %llu KB, L2 %llu KB, window %u\n",
                sc.gpu.clusters, sc.gpu.shadersPerCluster, sc.gpu.tileSize,
                sc.gpu.texAddressAlus, sc.gpu.texFilterAlus,
                (unsigned long long)(sc.gpu.texL1.sizeBytes / 1024),
                (unsigned long long)(sc.gpu.texL2.sizeBytes / 1024),
                sc.gpu.maxInflightTexRequests);
    std::printf("gddr5: %.0f GB/s over %u channels\n",
                sc.gddr5.totalBandwidthGBs, sc.gddr5.channels);
    std::printf("hmc: %.0f GB/s external, %.0f GB/s internal, %u vaults\n",
                sc.hmc.externalBandwidthGBs, sc.hmc.internalBandwidthGBs,
                sc.hmc.vaults);
    std::printf("atfim: threshold %.4f rad, %u-wide generator/combiner, "
                "PTB %u\n",
                double(sc.angleThresholdRad), sc.atfim.texelGeneratorAlus,
                sc.atfim.parentTexelBufferEntries);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: texpim <render|compare|frames|config> ...\n");
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "render")
        return cmdRender(argc, argv);
    if (cmd == "compare")
        return cmdCompare(argc, argv);
    if (cmd == "frames")
        return cmdFrames(argc, argv);
    if (cmd == "config")
        return cmdConfig(argc, argv);
    TEXPIM_FATAL("unknown command '", cmd, "'");
}
